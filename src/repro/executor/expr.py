"""Expression compilation and SQL value semantics.

Bound expressions are compiled into Python closures evaluated per row.
SQL three-valued logic is honoured: comparisons with NULL yield NULL,
AND/OR follow Kleene semantics, and predicates keep a row only when they
evaluate to exactly TRUE.
"""

from __future__ import annotations

import calendar
import datetime
import operator
import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.catalog.schema import DataType
from repro.columnar import ConstVector, Vector
from repro.columnar import kernels as vk
from repro.errors import ExecutorError
from repro.planner import exprs as ex
from repro.planner.physical import ColumnId

RowFn = Callable[[tuple], object]

#: Batch evaluator: ``fn(cols, n, sel)`` over column vectors (see
#: :func:`compile_expr_batch`). Results duck-type as sequences of
#: Python values: plain lists, typed :mod:`repro.columnar` vectors, or
#: :class:`~repro.columnar.ConstVector`.
BatchFn = Callable[[Sequence[list], int, Optional[List[int]]], object]

_LIKE_CACHE: Dict[str, "re.Pattern"] = {}


def _like_pattern(pattern: str) -> "re.Pattern":
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        compiled = re.compile(f"^{regex}$", re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


def like_match(value: Optional[str], pattern: str) -> Optional[bool]:
    """SQL LIKE; ``%`` and ``_`` wildcards, anchored both ends."""
    if value is None:
        return None
    return _like_pattern(pattern).match(value) is not None


def add_interval(
    value: datetime.date, quantity: float, unit: str, sign: int = 1
) -> datetime.date:
    """date +/- INTERVAL, with end-of-month clamping like PostgreSQL."""
    amount = int(quantity) * sign
    if unit == "day":
        return value + datetime.timedelta(days=amount)
    months = amount if unit == "month" else amount * 12
    total = value.year * 12 + (value.month - 1) + months
    year, month = divmod(total, 12)
    month += 1
    day = min(value.day, calendar.monthrange(year, month)[1])
    return datetime.date(year, month, day)


def sql_compare(op: str, left: object, right: object) -> Optional[bool]:
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutorError(f"unknown comparison {op!r}")  # pragma: no cover


def sql_arith(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    if isinstance(right, _Interval):
        if op == "+":
            return add_interval(left, right.quantity, right.unit, 1)
        if op == "-":
            return add_interval(left, right.quantity, right.unit, -1)
        raise ExecutorError(f"cannot {op!r} an interval")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutorError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            return left / right  # SQL numeric division, not floor
        return left / right
    if op == "%":
        return left % right
    if op == "||":
        return str(left) + str(right)
    raise ExecutorError(f"unknown operator {op!r}")  # pragma: no cover


class _Interval:
    """Runtime interval value (only ever combined with dates)."""

    __slots__ = ("quantity", "unit")

    def __init__(self, quantity: float, unit: str):
        self.quantity = quantity
        self.unit = unit


#: Exact sizes for exact types (bool keys before it would match int;
#: ``type()`` dispatch keeps bool/int distinct, unlike ``isinstance``).
_FIXED_VALUE_BYTES = {
    type(None): 1,
    bool: 1,
    int: 8,
    float: 8,
    datetime.date: 4,
    datetime.datetime: 4,
}


def _generic_value_bytes(value: object) -> int:
    """The original isinstance chain, kept for subclasses and types
    outside the dispatch table — byte-identical to the historical sizes."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, (str, bytes)):
        return 4 + len(value)
    if isinstance(value, datetime.date):
        return 4
    if isinstance(value, tuple):
        return estimate_row_bytes(value)
    return 8


def estimate_row_bytes(row: Sequence[object]) -> int:
    """Approximate on-the-wire size of a tuple (for the cost model)."""
    total = 4
    for value in row:
        size = _FIXED_VALUE_BYTES.get(type(value))
        if size is not None:
            total += size
        elif type(value) is str or type(value) is bytes:
            total += 4 + len(value)
        elif type(value) is tuple:
            total += estimate_row_bytes(value)
        else:
            total += _generic_value_bytes(value)
    return total


class RowSizer:
    """:func:`estimate_row_bytes` with the fixed portion memoized per row
    type-signature.

    Motion and spill paths size every tuple they move; a stream has only
    a handful of type signatures (NULLs flip one entry), so memoizing the
    fixed byte total per signature collapses the per-value dispatch to
    one dict hit plus the variable-length (str/bytes/tuple) terms. Byte
    counts are exactly those of :func:`estimate_row_bytes` — the cost
    model's figures must not move.
    """

    __slots__ = ("_plans",)

    #: Sentinel plan: a type outside the table appeared; size per-row.
    _FALLBACK = (None, ())

    def __init__(self) -> None:
        self._plans: Dict[tuple, Tuple[Optional[int], tuple]] = {}

    def __call__(self, row: Sequence[object]) -> int:
        key = tuple(map(type, row))
        plan = self._plans.get(key)
        if plan is None:
            plan = self._compile(key)
            self._plans[key] = plan
        fixed, var_positions = plan
        if fixed is None:
            return estimate_row_bytes(row)
        total = fixed
        for position in var_positions:
            value = row[position]
            if type(value) is tuple:
                total += self(value)
            else:
                total += len(value)
        return total

    def _compile(self, key: tuple) -> Tuple[Optional[int], tuple]:
        fixed = 4
        variable = []
        for i, t in enumerate(key):
            size = _FIXED_VALUE_BYTES.get(t)
            if size is not None:
                fixed += size
            elif t is str or t is bytes:
                fixed += 4
                variable.append(i)
            elif t is tuple:
                variable.append(i)
            else:
                return self._FALLBACK
        return fixed, tuple(variable)


def compile_expr(
    expr: ex.BoundExpr,
    layout: Sequence[ColumnId],
    params: Optional[Sequence[object]] = None,
) -> RowFn:
    """Compile a bound expression against an input layout.

    ``layout`` lists the column identities of the input tuples;
    ``params`` holds InitPlan results for :class:`~repro.planner.exprs.BParam`.
    """
    index_of = {cid: i for i, cid in enumerate(layout)}
    params = list(params or [])

    def compile_node(node: ex.BoundExpr) -> RowFn:
        if isinstance(node, ex.BConst):
            value = node.value
            return lambda row: value
        if isinstance(node, ex.BInterval):
            interval = _Interval(node.quantity, node.unit)
            return lambda row: interval
        if isinstance(node, ex.BVar):
            if node.level != 0:
                raise ExecutorError(
                    "correlated variable survived planning (unsupported query shape)"
                )
            key = ("r", node.rel, node.col)
            position = index_of.get(key)
            if position is None:
                raise ExecutorError(f"column {key} not in layout {layout}")
            return lambda row, p=position: row[p]
        if isinstance(node, ex.BGroupRef):
            position = index_of.get(("g", node.index))
            if position is None:
                raise ExecutorError(f"group ref {node.index} not in layout")
            return lambda row, p=position: row[p]
        if isinstance(node, ex.BAggRef):
            position = index_of.get(("a", node.index))
            if position is None:
                raise ExecutorError(f"agg ref {node.index} not in layout")
            return lambda row, p=position: row[p]
        if isinstance(node, ex.BTargetRef):
            position = index_of.get(("t", node.index))
            if position is None:
                raise ExecutorError(f"target ref {node.index} not in layout")
            return lambda row, p=position: row[p]
        if isinstance(node, ex.BParam):
            if node.index >= len(params):
                raise ExecutorError(f"missing InitPlan param {node.index}")
            value = params[node.index]
            return lambda row: value
        if isinstance(node, ex.BOp):
            left = compile_node(node.left)
            right = compile_node(node.right)
            op = node.op
            if op == "and":
                def f_and(row):
                    a = left(row)
                    if a is False:
                        return False
                    b = right(row)
                    if b is False:
                        return False
                    if a is None or b is None:
                        return None
                    return True
                return f_and
            if op == "or":
                def f_or(row):
                    a = left(row)
                    if a is True:
                        return True
                    b = right(row)
                    if b is True:
                        return True
                    if a is None or b is None:
                        return None
                    return False
                return f_or
            if op in ("=", "<>", "<", "<=", ">", ">="):
                return lambda row: sql_compare(op, left(row), right(row))
            return lambda row: sql_arith(op, left(row), right(row))
        if isinstance(node, ex.BNot):
            operand = compile_node(node.operand)
            def f_not(row):
                value = operand(row)
                return None if value is None else not value
            return f_not
        if isinstance(node, ex.BCase):
            whens = [(compile_node(c), compile_node(r)) for c, r in node.whens]
            else_fn = (
                compile_node(node.else_result)
                if node.else_result is not None
                else (lambda row: None)
            )
            def f_case(row):
                for cond, result in whens:
                    if cond(row) is True:
                        return result(row)
                return else_fn(row)
            return f_case
        if isinstance(node, ex.BCast):
            operand = compile_node(node.operand)
            target = DataType.parse(node.type_name)
            return lambda row: target.coerce(operand(row))
        if isinstance(node, ex.BLike):
            operand = compile_node(node.operand)
            pattern, negated = node.pattern, node.negated
            def f_like(row):
                value = like_match(operand(row), pattern)
                if value is None:
                    return None
                return (not value) if negated else value
            return f_like
        if isinstance(node, ex.BIn):
            operand = compile_node(node.operand)
            items = [compile_node(i) for i in node.items]
            negated = node.negated
            def f_in(row):
                value = operand(row)
                if value is None:
                    return None
                found = any(item(row) == value for item in items)
                return (not found) if negated else found
            return f_in
        if isinstance(node, ex.BIsNull):
            operand = compile_node(node.operand)
            negated = node.negated
            def f_isnull(row):
                is_null = operand(row) is None
                return (not is_null) if negated else is_null
            return f_isnull
        if isinstance(node, ex.BExtract):
            operand = compile_node(node.operand)
            part = node.part
            def f_extract(row):
                value = operand(row)
                if value is None:
                    return None
                return getattr(value, part)
            return f_extract
        if isinstance(node, ex.BFunc):
            return compile_function(node)
        if isinstance(node, ex.BAgg):
            raise ExecutorError(
                "raw aggregate reached expression compilation (planner bug)"
            )
        if isinstance(node, ex.BSubPlan):
            raise ExecutorError(
                "subplan survived decorrelation (unsupported query shape)"
            )
        raise ExecutorError(f"cannot compile {type(node).__name__}")

    def compile_function(node: ex.BFunc) -> RowFn:
        args = [compile_node(a) for a in node.args]
        name = node.name
        if name == "substring":
            def f_substring(row):
                value = args[0](row)
                if value is None:
                    return None
                start = int(args[1](row)) - 1
                if len(args) > 2:
                    length = int(args[2](row))
                    return value[start : start + length]
                return value[start:]
            return f_substring
        if name == "upper":
            return lambda row: None if (v := args[0](row)) is None else v.upper()
        if name == "lower":
            return lambda row: None if (v := args[0](row)) is None else v.lower()
        if name == "length":
            return lambda row: None if (v := args[0](row)) is None else len(v)
        if name == "abs":
            return lambda row: None if (v := args[0](row)) is None else abs(v)
        if name == "round":
            def f_round(row):
                value = args[0](row)
                if value is None:
                    return None
                digits = int(args[1](row)) if len(args) > 1 else 0
                return round(value, digits)
            return f_round
        if name == "coalesce":
            def f_coalesce(row):
                for arg in args:
                    value = arg(row)
                    if value is not None:
                        return value
                return None
            return f_coalesce
        if name == "nullif":
            def f_nullif(row):
                a, b = args[0](row), args[1](row)
                return None if a == b else a
            return f_nullif
        raise ExecutorError(f"unknown function {name!r}")

    return compile_node(expr)


_CMP_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_PURE_OPS = frozenset({"=", "<>", "<", "<=", ">", ">=", "and", "or",
                       "+", "-", "*"})
_PURE_FUNCS = frozenset({"upper", "lower", "length", "abs", "coalesce",
                         "nullif"})


def _is_pure(node: ex.BoundExpr) -> bool:
    """May this expression be evaluated eagerly on extra rows?

    "Pure" means evaluation cannot raise on rows the row path would have
    skipped via AND/OR short-circuiting, so the batch path may evaluate
    it over the whole selection and apply the Kleene truth table
    afterwards — which gives exactly the short-circuit result. Division
    (by zero), ``%``, casts (parse errors), substring/round (``int()``
    of NULL arguments) and date±interval (calendar overflow) can raise,
    so they are excluded; comparisons, numeric ``+``/``-``/``*``, logic,
    LIKE/IN/IS NULL/CASE and total functions cannot.
    """
    if isinstance(node, (ex.BConst, ex.BParam, ex.BGroupRef, ex.BAggRef,
                         ex.BTargetRef)):
        return True
    if isinstance(node, ex.BVar):
        return node.level == 0
    if isinstance(node, ex.BOp):
        return (
            node.op in _PURE_OPS
            and _is_pure(node.left)
            and _is_pure(node.right)
        )
    if isinstance(node, (ex.BNot, ex.BIsNull, ex.BLike)):
        return _is_pure(node.operand)
    if isinstance(node, ex.BIn):
        return _is_pure(node.operand) and all(_is_pure(i) for i in node.items)
    if isinstance(node, ex.BCase):
        return all(
            _is_pure(c) and _is_pure(r) for c, r in node.whens
        ) and (node.else_result is None or _is_pure(node.else_result))
    if isinstance(node, ex.BFunc):
        return node.name in _PURE_FUNCS and all(_is_pure(a) for a in node.args)
    return False  # BInterval, BCast, BSubPlan, BAgg, anything unknown


def column_ref_key(node: ex.BoundExpr) -> Optional[tuple]:
    """The layout ColumnId of a bare column reference, else None."""
    if isinstance(node, ex.BVar) and node.level == 0:
        return ("r", node.rel, node.col)
    if isinstance(node, ex.BGroupRef):
        return ("g", node.index)
    if isinstance(node, ex.BAggRef):
        return ("a", node.index)
    if isinstance(node, ex.BTargetRef):
        return ("t", node.index)
    return None


def column_ref_position(
    node: ex.BoundExpr, layout: Sequence[ColumnId]
) -> Optional[int]:
    """Layout position of a bare column reference, else None.

    Drives the fused-projection fast path: a projection made purely of
    references permutes batch columns without evaluating any kernel."""
    key = column_ref_key(node)
    if key is None:
        return None
    for i, cid in enumerate(layout):
        if cid == key:
            return i
    return None


def compile_expr_batch(
    expr: ex.BoundExpr,
    layout: Sequence[ColumnId],
    params: Optional[Sequence[object]] = None,
) -> BatchFn:
    """Compile a bound expression into a batch (vectorized) evaluator.

    The returned function has signature ``fn(cols, n, sel=None)``:
    ``cols`` are the input's column vectors in ``layout`` order and ``n``
    the batch row count. With ``sel=None`` it returns one value per row;
    with a selection vector (list of row indices) it returns one value
    per selected row, in ``sel`` order. Results must be treated as
    read-only — a bare column reference returns the input vector itself.

    Selection vectors keep AND/OR/CASE/COALESCE/IN lazily evaluated with
    exactly the row path's short-circuit structure, so guarded
    expressions (``x <> 0 AND y / x > 1``) never raise on rows the guard
    excludes, and semantics (including which rows can raise) match
    :func:`compile_expr` on every input.
    """
    index_of = {cid: i for i, cid in enumerate(layout)}
    params = list(params or [])

    def constant(value) -> BatchFn:
        def f_const(cols, n, sel):
            return ConstVector(value, n if sel is None else len(sel))
        return f_const

    def column(position: int) -> BatchFn:
        def f_col(cols, n, sel):
            col = cols[position]
            if sel is None:
                return col
            if isinstance(col, (Vector, ConstVector)):
                return col.take(sel)
            return [col[i] for i in sel]
        return f_col

    def row_fallback(node: ex.BoundExpr) -> BatchFn:
        """Bridge rare node types through the row compiler."""
        row_fn = compile_expr(node, layout, params)
        def f_fallback(cols, n, sel):
            indices = range(n) if sel is None else sel
            return [row_fn(tuple(col[i] for col in cols)) for i in indices]
        return f_fallback

    def compile_node(node: ex.BoundExpr) -> BatchFn:
        if isinstance(node, ex.BConst):
            return constant(node.value)
        if isinstance(node, ex.BInterval):
            return constant(_Interval(node.quantity, node.unit))
        if isinstance(node, ex.BVar):
            if node.level != 0:
                raise ExecutorError(
                    "correlated variable survived planning (unsupported query shape)"
                )
            key = ("r", node.rel, node.col)
            position = index_of.get(key)
            if position is None:
                raise ExecutorError(f"column {key} not in layout {layout}")
            return column(position)
        if isinstance(node, ex.BGroupRef):
            position = index_of.get(("g", node.index))
            if position is None:
                raise ExecutorError(f"group ref {node.index} not in layout")
            return column(position)
        if isinstance(node, ex.BAggRef):
            position = index_of.get(("a", node.index))
            if position is None:
                raise ExecutorError(f"agg ref {node.index} not in layout")
            return column(position)
        if isinstance(node, ex.BTargetRef):
            position = index_of.get(("t", node.index))
            if position is None:
                raise ExecutorError(f"target ref {node.index} not in layout")
            return column(position)
        if isinstance(node, ex.BParam):
            if node.index >= len(params):
                raise ExecutorError(f"missing InitPlan param {node.index}")
            return constant(params[node.index])
        if isinstance(node, ex.BOp):
            left = compile_node(node.left)
            right = compile_node(node.right)
            op = node.op
            if op == "and":
                # When the right side provably cannot raise, both sides
                # can be evaluated eagerly over the whole selection and
                # combined with one vectorized Kleene pass — the truth
                # table gives exactly the lazy short-circuit result. The
                # eager route is only taken when the left side came back
                # as a vector (i.e. the fast kernels are engaged);
                # otherwise the lazy sub-selection path below evaluates
                # the right side only where the left is not False.
                pure_right = _is_pure(node.right)
                def f_and(cols, n, sel):
                    a = left(cols, n, sel)
                    if pure_right and isinstance(a, (Vector, ConstVector)):
                        b = right(cols, n, sel)
                        fast = vk.kleene_and(a, b)
                        if fast is not None:
                            return fast
                        out = []
                        for av, bv in zip(a, b):
                            if av is False or bv is False:
                                out.append(False)
                            elif av is None or bv is None:
                                out.append(None)
                            else:
                                out.append(True)
                        return out
                    indices = range(n) if sel is None else sel
                    sub = [i for i, av in zip(indices, a) if av is not False]
                    if not sub:
                        return a
                    b = right(cols, n, sub)
                    out = list(a)
                    bi = 0
                    for j, av in enumerate(out):
                        if av is not False:
                            bv = b[bi]
                            bi += 1
                            if bv is False:
                                out[j] = False
                            elif av is None or bv is None:
                                out[j] = None
                            else:
                                out[j] = True
                    return out
                return f_and
            if op == "or":
                pure_right = _is_pure(node.right)
                def f_or(cols, n, sel):
                    a = left(cols, n, sel)
                    if pure_right and isinstance(a, (Vector, ConstVector)):
                        b = right(cols, n, sel)
                        fast = vk.kleene_or(a, b)
                        if fast is not None:
                            return fast
                        out = []
                        for av, bv in zip(a, b):
                            if av is True or bv is True:
                                out.append(True)
                            elif av is None or bv is None:
                                out.append(None)
                            else:
                                out.append(False)
                        return out
                    indices = range(n) if sel is None else sel
                    sub = [i for i, av in zip(indices, a) if av is not True]
                    if not sub:
                        return a
                    b = right(cols, n, sub)
                    out = list(a)
                    bi = 0
                    for j, av in enumerate(out):
                        if av is not True:
                            bv = b[bi]
                            bi += 1
                            if bv is True:
                                out[j] = True
                            elif av is None or bv is None:
                                out[j] = None
                            else:
                                out[j] = False
                    return out
                return f_or
            if op in _CMP_OPS:
                py_op = _CMP_OPS[op]
                def f_cmp(cols, n, sel):
                    l = left(cols, n, sel)
                    r = right(cols, n, sel)
                    fast = vk.cmp_fast(py_op, l, r)
                    if fast is not None:
                        return fast
                    return [
                        None if a is None or b is None else py_op(a, b)
                        for a, b in zip(l, r)
                    ]
                return f_cmp
            if op in ("+", "-", "*"):
                # Fast elementwise path; the per-value _Interval check
                # keeps date arithmetic identical to sql_arith.
                py_op = {"+": operator.add, "-": operator.sub,
                         "*": operator.mul}[op]
                def f_arith(cols, n, sel):
                    l = left(cols, n, sel)
                    r = right(cols, n, sel)
                    fast = vk.arith_fast(op, l, r)
                    if fast is not None:
                        return fast
                    return [
                        None if a is None or b is None
                        else (
                            py_op(a, b)
                            if type(b) is not _Interval
                            else sql_arith(op, a, b)
                        )
                        for a, b in zip(l, r)
                    ]
                return f_arith
            def f_arith_slow(cols, n, sel):
                l = left(cols, n, sel)
                r = right(cols, n, sel)
                if op == "%":
                    # int64 %% nonzero-int-constant is total and exact.
                    fast = vk.arith_fast(op, l, r)
                    if fast is not None:
                        return fast
                return [sql_arith(op, a, b) for a, b in zip(l, r)]
            return f_arith_slow
        if isinstance(node, ex.BNot):
            operand = compile_node(node.operand)
            def f_not(cols, n, sel):
                vals = operand(cols, n, sel)
                fast = vk.not_fast(vals)
                if fast is not None:
                    return fast
                return [None if v is None else not v for v in vals]
            return f_not
        if isinstance(node, ex.BCase):
            whens = [(compile_node(c), compile_node(r)) for c, r in node.whens]
            else_fn = (
                compile_node(node.else_result)
                if node.else_result is not None
                else None
            )
            def f_case(cols, n, sel):
                rows = list(range(n)) if sel is None else list(sel)
                out = [None] * len(rows)
                positions = list(range(len(rows)))
                for cond, result in whens:
                    if not rows:
                        break
                    cvals = cond(cols, n, rows)
                    hit_pos = [p for p, cv in zip(positions, cvals) if cv is True]
                    if hit_pos:
                        hit_rows = [r for r, cv in zip(rows, cvals) if cv is True]
                        rvals = result(cols, n, hit_rows)
                        for p, v in zip(hit_pos, rvals):
                            out[p] = v
                        positions = [
                            p for p, cv in zip(positions, cvals) if cv is not True
                        ]
                        rows = [r for r, cv in zip(rows, cvals) if cv is not True]
                if rows and else_fn is not None:
                    evals = else_fn(cols, n, rows)
                    for p, v in zip(positions, evals):
                        out[p] = v
                return out
            return f_case
        if isinstance(node, ex.BCast):
            operand = compile_node(node.operand)
            coerce = DataType.parse(node.type_name).coerce
            def f_cast(cols, n, sel):
                return [coerce(v) for v in operand(cols, n, sel)]
            return f_cast
        if isinstance(node, ex.BLike):
            operand = compile_node(node.operand)
            match = _like_pattern(node.pattern).match
            negated = node.negated
            if negated:
                def f_nlike(cols, n, sel):
                    vals = operand(cols, n, sel)
                    fast = vk.like_fast(vals, match, negated)
                    if fast is not None:
                        return fast
                    return [
                        None if v is None else match(v) is None for v in vals
                    ]
                return f_nlike
            def f_like(cols, n, sel):
                vals = operand(cols, n, sel)
                fast = vk.like_fast(vals, match, negated)
                if fast is not None:
                    return fast
                return [
                    None if v is None else match(v) is not None for v in vals
                ]
            return f_like
        if isinstance(node, ex.BIn):
            operand = compile_node(node.operand)
            negated = node.negated
            if all(isinstance(i, ex.BConst) for i in node.items):
                # Tuple membership performs the same ==-scan any() did.
                items = tuple(i.value for i in node.items)
                def f_in_const(cols, n, sel):
                    vals = operand(cols, n, sel)
                    fast = vk.in_const_fast(vals, items, negated)
                    if fast is not None:
                        return fast
                    out = []
                    for v in vals:
                        if v is None:
                            out.append(None)
                        else:
                            found = v in items
                            out.append((not found) if negated else found)
                    return out
                return f_in_const
            item_fns = [compile_node(i) for i in node.items]
            def f_in(cols, n, sel):
                vals = operand(cols, n, sel)
                rows = list(range(n)) if sel is None else list(sel)
                out = [None] * len(rows)
                pending = [
                    (p, r) for p, (r, v) in enumerate(zip(rows, vals))
                    if v is not None
                ]
                for p, _r in pending:
                    out[p] = negated  # "not found" until an item matches
                for item in item_fns:
                    if not pending:
                        break
                    sub_rows = [r for _p, r in pending]
                    ivals = item(cols, n, sub_rows)
                    still = []
                    for (p, r), iv in zip(pending, ivals):
                        if iv == vals[p]:
                            out[p] = not negated
                        else:
                            still.append((p, r))
                    pending = still
                return out
            return f_in
        if isinstance(node, ex.BIsNull):
            operand = compile_node(node.operand)
            negated = node.negated
            if negated:
                def f_notnull(cols, n, sel):
                    vals = operand(cols, n, sel)
                    fast = vk.isnull_fast(vals, negated)
                    if fast is not None:
                        return fast
                    return [v is not None for v in vals]
                return f_notnull
            def f_isnull(cols, n, sel):
                vals = operand(cols, n, sel)
                fast = vk.isnull_fast(vals, negated)
                if fast is not None:
                    return fast
                return [v is None for v in vals]
            return f_isnull
        if isinstance(node, ex.BExtract):
            operand = compile_node(node.operand)
            part = node.part
            def f_extract(cols, n, sel):
                return [
                    None if v is None else getattr(v, part)
                    for v in operand(cols, n, sel)
                ]
            return f_extract
        if isinstance(node, ex.BFunc):
            return compile_function(node)
        if isinstance(node, ex.BAgg):
            raise ExecutorError(
                "raw aggregate reached expression compilation (planner bug)"
            )
        if isinstance(node, ex.BSubPlan):
            raise ExecutorError(
                "subplan survived decorrelation (unsupported query shape)"
            )
        return row_fallback(node)

    def compile_function(node: ex.BFunc) -> BatchFn:
        args = [compile_node(a) for a in node.args]
        name = node.name
        if name == "upper":
            def f_upper(cols, n, sel):
                vals = args[0](cols, n, sel)
                fast = vk.str_map_fast(vals, str.upper)
                if fast is not None:
                    return fast
                return [None if v is None else v.upper() for v in vals]
            return f_upper
        if name == "lower":
            def f_lower(cols, n, sel):
                vals = args[0](cols, n, sel)
                fast = vk.str_map_fast(vals, str.lower)
                if fast is not None:
                    return fast
                return [None if v is None else v.lower() for v in vals]
            return f_lower
        if name == "length":
            def f_length(cols, n, sel):
                return [
                    None if v is None else len(v)
                    for v in args[0](cols, n, sel)
                ]
            return f_length
        if name == "abs":
            def f_abs(cols, n, sel):
                return [
                    None if v is None else abs(v)
                    for v in args[0](cols, n, sel)
                ]
            return f_abs
        if name == "substring":
            def f_substring(cols, n, sel):
                vals = args[0](cols, n, sel)
                starts = args[1](cols, n, sel)
                lengths = args[2](cols, n, sel) if len(args) > 2 else None
                out = []
                for j, v in enumerate(vals):
                    if v is None:
                        out.append(None)
                        continue
                    start = int(starts[j]) - 1
                    if lengths is not None:
                        out.append(v[start : start + int(lengths[j])])
                    else:
                        out.append(v[start:])
                return out
            return f_substring
        if name == "round":
            def f_round(cols, n, sel):
                vals = args[0](cols, n, sel)
                digits = args[1](cols, n, sel) if len(args) > 1 else None
                return [
                    None if v is None
                    else round(v, int(digits[j]) if digits is not None else 0)
                    for j, v in enumerate(vals)
                ]
            return f_round
        if name == "coalesce":
            def f_coalesce(cols, n, sel):
                rows = list(range(n)) if sel is None else list(sel)
                out = [None] * len(rows)
                positions = list(range(len(rows)))
                for arg in args:
                    if not rows:
                        break
                    vals = arg(cols, n, rows)
                    next_pos = []
                    next_rows = []
                    for p, r, v in zip(positions, rows, vals):
                        if v is not None:
                            out[p] = v
                        else:
                            next_pos.append(p)
                            next_rows.append(r)
                    positions, rows = next_pos, next_rows
                return out
            return f_coalesce
        if name == "nullif":
            def f_nullif(cols, n, sel):
                avals = args[0](cols, n, sel)
                bvals = args[1](cols, n, sel)
                return [None if a == b else a for a, b in zip(avals, bvals)]
            return f_nullif
        raise ExecutorError(f"unknown function {name!r}")

    return compile_node(expr)
