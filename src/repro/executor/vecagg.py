"""Vectorized hash-aggregate accumulation.

``fold_batch`` folds one column batch into the executor's ``groups``
dict (group key tuple → list of live ``AggState`` objects) without a
per-row Python loop: group ids come from one ``np.unique`` over the key
vector, and count/sum/avg transitions become ``np.bincount`` calls.

The fold is *exact*, not approximate — the row/batch differential
contract demands identical results:

* Group output order is insertion order. New groups are inserted into
  ``groups`` in first-appearance row order (``argsort`` of the unique
  keys' first indices), exactly as the per-row loop would.
* ``np.bincount`` accumulates weights in array-index order, so per-group
  float sums add values in row order — and each group's *running total
  from earlier batches is prepended as its first weight*, reproducing
  ``((total + v0) + v1)`` rather than the differently-rounded
  ``total + (v0 + v1)``.
* Integer sums ride float64 only under the proof obligation
  ``M * S < 2**53`` (``M`` = max |addend| including prior totals, ``S``
  = worst-case addend count), under which every partial sum is exactly
  representable; otherwise the batch falls back to the per-row loop.
* min/max and DISTINCT aggregates always use the per-row loop (NaN and
  ordering semantics are not worth vectorizing bit-compatibly).

``fold_batch`` returns the ``group_bytes`` added for new groups (the
spill-charge input, same ``sizer(key) + 16 * len(states)`` accounting as
the row path), or None when the batch's shapes are unsupported — the
caller then runs the ordinary per-row fallback for that batch.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.columnar.vector import (
    ConstVector,
    DictVector,
    FloatVector,
    IntVector,
    numpy_module,
)

#: Addend-count × magnitude bound under which float64 int sums are exact.
_EXACT_INT = 2**53

_FOLDABLE = ("count", "sum", "avg")


def _valid_of(np, vec):
    """Bool array selecting non-NULL rows, or None when all rows are."""
    if isinstance(vec, DictVector):
        null = vec.data < 0
        return ~null if null.any() else None
    mask = vec.mask
    if mask is None:
        return None
    mask = np.asarray(mask, dtype=bool)
    return ~mask if mask.any() else None


def _countable(vec) -> bool:
    if isinstance(vec, ConstVector):
        return True
    from repro.columnar.vector import Vector

    return isinstance(vec, Vector) and (
        vec.is_numpy() or isinstance(vec, DictVector) and vec.is_numpy()
    )


def _count_fold(np, vec, inv, k: int, n: int) -> List[int]:
    """Per-group accumulate counts for one batch (count(*) or count(x))."""
    if vec is None:  # count(*): every row counts
        if inv is None:
            return [n]
        return np.bincount(inv, minlength=k).tolist()
    if isinstance(vec, ConstVector):
        if vec.value is None:
            return [0] * k
        return [n] if inv is None else np.bincount(inv, minlength=k).tolist()
    valid = _valid_of(np, vec)
    if valid is None:
        return [n] if inv is None else np.bincount(inv, minlength=k).tolist()
    if inv is None:
        return [int(valid.sum())]
    return np.bincount(inv[valid], minlength=k).tolist()


def fold_batch(
    groups: dict,
    aggs: Sequence,
    key_vecs: Sequence,
    arg_vecs: Sequence,
    n: int,
    sizer: Callable,
    make_states: Callable[[], list],
) -> Optional[int]:
    """Fold one batch of ``n`` rows into ``groups``; returns added
    group bytes, or None when this batch needs the per-row fallback."""
    np = numpy_module()
    if np is None or n == 0:
        return None

    # ---- validate aggregate shapes first (no mutation before commit)
    for agg, vec in zip(aggs, arg_vecs):
        if agg.distinct or agg.func not in _FOLDABLE:
            return None
        if agg.func == "count":
            if vec is not None and not _countable(vec):
                return None
        elif not (
            isinstance(vec, (IntVector, FloatVector)) and vec.is_numpy()
        ):
            return None

    # ---- group ids: one np.unique over the (single) key vector
    if not key_vecs:
        k, inv = 1, None
        uniq_keys: List[tuple] = [()]
        order = [0]
    elif len(key_vecs) == 1:
        vec = key_vecs[0]
        if isinstance(vec, DictVector) and vec.is_numpy():
            dictionary = vec.dictionary
            if len(set(dictionary)) != len(dictionary):
                # Post-transform dictionaries (upper()) may alias two
                # codes to one string; codes would no longer be
                # injective group ids, so fold per row instead.
                return None
            uniq, first, inv = np.unique(
                vec.data, return_index=True, return_inverse=True
            )
            uniq_keys = [
                (None,) if c < 0 else (dictionary[c],) for c in uniq.tolist()
            ]
        elif (
            isinstance(vec, IntVector) and vec.is_numpy() and vec.mask is None
        ):
            uniq, first, inv = np.unique(
                vec.data, return_index=True, return_inverse=True
            )
            uniq_keys = [(v,) for v in uniq.tolist()]
        else:
            return None
        k = len(uniq_keys)
        order = np.argsort(first).tolist()  # first-appearance order
    else:
        return None

    states_by_g = [groups.get(key) for key in uniq_keys]

    # ---- int-sum exactness guard (uses existing totals, read-only)
    for idx, (agg, vec) in enumerate(zip(aggs, arg_vecs)):
        if agg.func != "sum" or not isinstance(vec, IntVector):
            continue
        valid = _valid_of(np, vec)
        data = vec.data if valid is None else vec.data[valid]
        magnitude = 0
        if len(data):
            magnitude = max(abs(int(data.max())), abs(int(data.min())))
        for states in states_by_g:
            if states is not None and states[idx].total is not None:
                magnitude = max(magnitude, abs(states[idx].total))
        if magnitude * (len(data) + 1) >= _EXACT_INT:
            return None

    # ---- commit: create missing groups in first-appearance order
    added_bytes = 0
    for j in order:
        if states_by_g[j] is None:
            states = make_states()
            groups[uniq_keys[j]] = states
            states_by_g[j] = states
            added_bytes += sizer(uniq_keys[j]) + 16 * len(states)

    # ---- fold every aggregate vectorized
    for idx, (agg, vec) in enumerate(zip(aggs, arg_vecs)):
        if agg.func == "count":
            for j, c in enumerate(_count_fold(np, vec, inv, k, n)):
                if c:
                    states_by_g[j][idx].count += c
            continue
        is_avg = agg.func == "avg"
        to_int = isinstance(vec, IntVector)
        valid = _valid_of(np, vec)
        if valid is None:
            data = vec.data
            gids = inv
        else:
            data = vec.data[valid]
            gids = inv[valid] if inv is not None else None
        if gids is None:
            gids = np.zeros(len(data), dtype=np.intp)
        counts = np.bincount(gids, minlength=k)
        weights = data.astype(np.float64, copy=False)
        # Prepend each group's running total as its first addend.
        pre_g: List[int] = []
        pre_v: List[float] = []
        for j in range(k):
            total = states_by_g[j][idx].total
            if total is not None:  # AvgState totals always exist (0.0)
                pre_g.append(j)
                pre_v.append(float(total))
        if pre_g:
            gids = np.concatenate([np.asarray(pre_g, dtype=np.intp), gids])
            weights = np.concatenate(
                [np.asarray(pre_v, dtype=np.float64), weights]
            )
        sums = (
            np.bincount(gids, weights=weights, minlength=k)
            if len(gids)
            else np.zeros(k)
        )
        for j in range(k):
            c = int(counts[j])
            if not c:
                continue  # no new addends: leave the state untouched
            state = states_by_g[j][idx]
            if is_avg:
                state.total = float(sums[j])
                state.count += c
            else:
                state.total = int(sums[j]) if to_int else float(sums[j])
    return added_bytes
