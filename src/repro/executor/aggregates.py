"""Aggregate transition states for one- and two-phase aggregation.

Each aggregate has a *state*; ``accumulate`` folds input values in,
``merge`` combines partial states from different QEs (the two-phase
plan's final side), and ``finalize`` produces the SQL value. NULLs are
skipped by every aggregate except ``count(*)``, per the standard.

The ``count``/``total`` slots of CountState/SumState/AvgState are part
of the vectorized fold contract: ``repro.executor.vecagg.fold_batch``
updates them directly from whole-batch ``bincount`` reductions, and the
prepend-the-running-total trick there only reproduces ``accumulate``'s
left-to-right float addition if those slots keep their meaning.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.errors import ExecutorError
from repro.planner.exprs import BAgg


class AggState:
    """Base class; one instance per (group, aggregate)."""

    def accumulate(self, value: object) -> None:
        raise NotImplementedError

    def merge(self, other: "AggState") -> None:
        raise NotImplementedError

    def finalize(self) -> object:
        raise NotImplementedError


class CountState(AggState):
    __slots__ = ("count", "count_star")

    def __init__(self, count_star: bool):
        self.count = 0
        self.count_star = count_star

    def accumulate(self, value: object) -> None:
        if self.count_star or value is not None:
            self.count += 1

    def merge(self, other: "CountState") -> None:
        self.count += other.count

    def finalize(self) -> int:
        return self.count


class SumState(AggState):
    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total: Optional[object] = None

    def accumulate(self, value: object) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def merge(self, other: "SumState") -> None:
        if other.total is not None:
            self.accumulate(other.total)

    def finalize(self) -> object:
        return self.total


class AvgState(AggState):
    __slots__ = ("total", "count")

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def accumulate(self, value: object) -> None:
        if value is None:
            return
        self.total += value
        self.count += 1

    def merge(self, other: "AvgState") -> None:
        self.total += other.total
        self.count += other.count

    def finalize(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count


class MinMaxState(AggState):
    __slots__ = ("value", "is_min")

    def __init__(self, is_min: bool):
        self.value: Optional[object] = None
        self.is_min = is_min

    def accumulate(self, value: object) -> None:
        if value is None:
            return
        if self.value is None:
            self.value = value
        elif self.is_min:
            if value < self.value:
                self.value = value
        elif value > self.value:
            self.value = value

    def merge(self, other: "MinMaxState") -> None:
        self.accumulate(other.value)

    def finalize(self) -> object:
        return self.value


class DistinctState(AggState):
    """Wrapper deduplicating inputs before the inner aggregate.

    Only used in single-phase plans (the planner never runs DISTINCT
    aggregates in two phases).
    """

    __slots__ = ("seen", "inner")

    def __init__(self, inner: AggState):
        self.seen: Set[object] = set()
        self.inner = inner

    def accumulate(self, value: object) -> None:
        if value is None or value in self.seen:
            return
        self.seen.add(value)
        self.inner.accumulate(value)

    def merge(self, other: "DistinctState") -> None:
        raise ExecutorError("DISTINCT aggregates cannot be merged across phases")

    def finalize(self) -> object:
        return self.inner.finalize()


def make_state(agg: BAgg) -> AggState:
    """Create a fresh transition state for one aggregate definition."""
    func = agg.func
    if func == "count":
        state: AggState = CountState(count_star=agg.arg is None)
    elif func == "sum":
        state = SumState()
    elif func == "avg":
        state = AvgState()
    elif func == "min":
        state = MinMaxState(is_min=True)
    elif func == "max":
        state = MinMaxState(is_min=False)
    else:  # pragma: no cover - analyzer rejects unknown aggregates
        raise ExecutorError(f"unknown aggregate {func!r}")
    if agg.distinct:
        return DistinctState(state)
    return state
