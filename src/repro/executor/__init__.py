"""Parallel executor: the QD runtime, QE slice interpreter, expressions."""

from repro.executor.expr import compile_expr, estimate_row_bytes
from repro.executor.runner import (
    DistributedRuntime,
    ExecutionContext,
    QueryResult,
)

__all__ = [
    "DistributedRuntime",
    "ExecutionContext",
    "QueryResult",
    "compile_expr",
    "estimate_row_bytes",
]
