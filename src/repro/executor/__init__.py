"""Pipelined parallel executor: QEs, operators, expressions, motions."""

from repro.executor.expr import compile_expr, estimate_row_bytes
from repro.executor.runner import ExecutionContext, QueryResult, execute_plan

__all__ = [
    "ExecutionContext",
    "QueryResult",
    "compile_expr",
    "estimate_row_bytes",
    "execute_plan",
]
