"""Discrete-event simulated network used by the interconnect."""

from repro.network.simnet import Datagram, NetworkConditions, SimNetwork

__all__ = ["Datagram", "NetworkConditions", "SimNetwork"]
