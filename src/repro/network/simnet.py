"""A discrete-event, unreliable datagram network.

This is the substrate the UDP interconnect (Section 4 of the paper) is
built on. It deliberately behaves like real IP hardware and kernels:

* datagrams may be **dropped** (``loss_rate``),
* **duplicated** (``dup_rate``),
* **reordered** (delivery jitter makes later sends overtake earlier ones),
* and always experience latency plus serialization delay.

Endpoints register a handler per ``(host, port)``; the event loop invokes
handlers as datagrams arrive. Timers (:meth:`SimNetwork.schedule`) share
the same clock, so protocol retransmission logic interleaves with
deliveries exactly as it would under an OS scheduler.

All randomness comes from a :class:`~repro.util.DeterministicRng`, so a
given seed always produces the same loss/reorder pattern — every protocol
branch is reproducibly testable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import InterconnectError
from repro.util import DeterministicRng

Address = Tuple[str, int]


@dataclass
class NetworkConditions:
    """Tunable physical characteristics of the simulated fabric."""

    latency: float = 100e-6
    jitter: float = 50e-6
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    #: Probability a delivered datagram arrives bit-flipped. Receivers
    #: that checksum (the UDP interconnect) drop corrupted datagrams, so
    #: corruption behaves like loss discovered one hop later.
    corrupt_rate: float = 0.0
    #: Link bandwidth in bytes/second used for serialization delay.
    bandwidth: float = 1.25e9


@dataclass
class Datagram:
    """One unreliable datagram in flight."""

    src: Address
    dst: Address
    payload: object
    size: int
    #: True when the fabric flipped bits in transit; a checksumming
    #: receiver will discard this datagram on arrival.
    corrupted: bool = False


class SimNetwork:
    """Event loop + unreliable datagram fabric.

    The loop is single-threaded and deterministic: events fire in
    (time, insertion order) sequence.
    """

    def __init__(self, conditions: Optional[NetworkConditions] = None, seed: int = 0):
        self.conditions = conditions or NetworkConditions()
        self._rng = DeterministicRng(seed, "simnet")
        self._now = 0.0
        self._events: list = []
        self._counter = itertools.count()
        self._handlers: Dict[Address, Callable[[Datagram], None]] = {}
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> "TimerHandle":
        """Run ``callback`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        handle = TimerHandle()
        heapq.heappush(
            self._events, (self._now + delay, next(self._counter), callback, handle)
        )
        return handle

    # -------------------------------------------------------------- endpoints
    def register(self, address: Address, handler: Callable[[Datagram], None]) -> None:
        """Bind a datagram handler to ``(host, port)``."""
        if address in self._handlers:
            raise InterconnectError(f"address already bound: {address}")
        self._handlers[address] = handler

    def unregister(self, address: Address) -> None:
        self._handlers.pop(address, None)

    # ------------------------------------------------------------------ send
    def send(self, src: Address, dst: Address, payload: object, size: int) -> None:
        """Send one datagram; it may be lost, duplicated or reordered."""
        self.bytes_sent += size
        copies = 1
        if self._rng.chance(self.conditions.loss_rate):
            self.dropped += 1
            copies = 0
        elif self._rng.chance(self.conditions.dup_rate):
            self.duplicated += 1
            copies = 2
        for _ in range(copies):
            delay = (
                self.conditions.latency
                + self._rng.random() * self.conditions.jitter
                + size / self.conditions.bandwidth
            )
            corrupt = self._rng.chance(self.conditions.corrupt_rate)
            if corrupt:
                self.corrupted += 1
            datagram = Datagram(
                src=src, dst=dst, payload=payload, size=size, corrupted=corrupt
            )
            self.schedule(delay, lambda d=datagram: self._deliver(d))

    def _deliver(self, datagram: Datagram) -> None:
        handler = self._handlers.get(datagram.dst)
        if handler is None:
            return  # port closed: silently dropped, like real UDP
        self.delivered += 1
        handler(datagram)

    # ------------------------------------------------------------------- run
    def run(
        self,
        until: Optional[Callable[[], bool]] = None,
        max_time: float = 3600.0,
        max_events: int = 50_000_000,
    ) -> float:
        """Process events until the predicate holds or the queue drains.

        Returns the simulated time at which processing stopped. Raises
        :class:`InterconnectError` if ``max_time`` elapses first — that is
        the simulation's analogue of a hung query.
        """
        processed = 0
        while self._events:
            if until is not None and until():
                return self._now
            time, _seq, callback, handle = heapq.heappop(self._events)
            if handle.cancelled:
                continue
            if time > max_time:
                raise InterconnectError(
                    f"simulation exceeded max_time={max_time}s at t={time:.6f}"
                )
            self._now = time
            callback()
            processed += 1
            if processed > max_events:
                raise InterconnectError("simulation exceeded max_events")
        if until is not None and not until():
            raise InterconnectError("event queue drained before completion")
        return self._now


class TimerHandle:
    """Cancellation token returned by :meth:`SimNetwork.schedule`."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
