"""Abstract syntax tree for the supported SQL dialect.

Expression and statement node classes produced by the parser and
consumed by the semantic analyzer. Nodes are plain dataclasses with no
behaviour — all smarts live in later phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ------------------------------------------------------------- expressions
@dataclass
class Expr:
    """Base class of all expression nodes."""


@dataclass
class Literal(Expr):
    value: object  # int, float, str, bool, datetime.date, None


@dataclass
class IntervalLiteral(Expr):
    """INTERVAL '3 month' — kept symbolic until date arithmetic."""

    quantity: float
    unit: str  # year | month | day


@dataclass
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None  # qualifier, if written


@dataclass
class Star(Expr):
    table: Optional[str] = None  # for COUNT(*) and SELECT t.*


@dataclass
class BinaryOp(Expr):
    op: str  # and or = <> < <= > >= + - * / % ||
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    op: str  # not, -
    operand: Expr


@dataclass
class FuncCall(Expr):
    name: str
    args: List[Expr] = field(default_factory=list)
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass
class CaseExpr(Expr):
    whens: List[Tuple[Expr, Expr]] = field(default_factory=list)
    else_result: Optional[Expr] = None


@dataclass
class CastExpr(Expr):
    operand: Expr
    type_name: str


@dataclass
class LikeExpr(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass
class BetweenExpr(Expr):
    operand: Expr
    lower: Expr
    upper: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    operand: Expr
    items: List[Expr] = field(default_factory=list)
    negated: bool = False


@dataclass
class IsNullExpr(Expr):
    operand: Expr
    negated: bool = False  # IS NOT NULL


@dataclass
class ExtractExpr(Expr):
    part: str  # year | month | day
    operand: Expr


@dataclass
class SubqueryExpr(Expr):
    """Scalar subquery: (SELECT ...) used as a value."""

    query: "SelectStmt"


@dataclass
class InSubquery(Expr):
    operand: Expr
    query: "SelectStmt"
    negated: bool = False


@dataclass
class ExistsExpr(Expr):
    query: "SelectStmt"
    negated: bool = False


# --------------------------------------------------------------- from items
@dataclass
class FromItem:
    """Base class of FROM-clause items."""


@dataclass
class TableRef(FromItem):
    name: str
    alias: Optional[str] = None


@dataclass
class SubquerySource(FromItem):
    query: "SelectStmt"
    alias: str


@dataclass
class JoinExpr(FromItem):
    join_type: str  # inner | left | right | full | cross
    left: FromItem
    right: FromItem
    condition: Optional[Expr] = None


# --------------------------------------------------------------- statements
@dataclass
class Statement:
    """Base class of all statements."""


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class SortItem:
    expr: Expr
    ascending: bool = True
    nulls_first: Optional[bool] = None


@dataclass
class SelectStmt(Statement):
    items: List[SelectItem] = field(default_factory=list)
    from_items: List[FromItem] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[SortItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False


@dataclass
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False


@dataclass
class PartitionByClause:
    column: str
    kind: str  # range | list
    # range: START/END/EVERY expressions; list: list of (name, values)
    start: Optional[Expr] = None
    end: Optional[Expr] = None
    every: Optional[Expr] = None
    start_inclusive: bool = True
    end_inclusive: bool = False
    list_parts: List[Tuple[str, List[Expr]]] = field(default_factory=list)


@dataclass
class CreateTableStmt(Statement):
    name: str
    columns: List[ColumnDef] = field(default_factory=list)
    distributed_by: Optional[List[str]] = None  # None => randomly
    distributed_randomly: bool = False
    partition_by: Optional[PartitionByClause] = None
    #: WITH (appendonly=true, orientation=column, compresstype=..., ...)
    options: dict = field(default_factory=dict)


@dataclass
class CreateExternalTableStmt(Statement):
    name: str
    columns: List[ColumnDef] = field(default_factory=list)
    location: str = ""
    format_name: str = "CUSTOM"
    format_options: dict = field(default_factory=dict)
    #: WRITABLE external tables accept INSERT and export to the store.
    writable: bool = False


@dataclass
class CreateViewStmt(Statement):
    name: str
    query: SelectStmt = None


@dataclass
class DropStmt(Statement):
    object_kind: str  # table | view | external table
    name: str = ""
    if_exists: bool = False


@dataclass
class InsertStmt(Statement):
    table: str
    columns: Optional[List[str]] = None
    rows: List[List[Expr]] = field(default_factory=list)  # VALUES rows
    select: Optional[SelectStmt] = None  # INSERT ... SELECT


@dataclass
class BeginStmt(Statement):
    isolation: Optional[str] = None


@dataclass
class CommitStmt(Statement):
    pass


@dataclass
class RollbackStmt(Statement):
    pass


@dataclass
class SetStmt(Statement):
    name: str
    value: str


@dataclass
class AnalyzeStmt(Statement):
    table: Optional[str] = None  # None => all tables


@dataclass
class ExplainStmt(Statement):
    statement: Statement = None
    analyze: bool = False
    verbose: bool = False


@dataclass
class TruncateStmt(Statement):
    table: str = ""


@dataclass
class CreateRoleStmt(Statement):
    name: str = ""
    superuser: bool = False
    resource_queue: Optional[str] = None


@dataclass
class DropRoleStmt(Statement):
    name: str = ""


@dataclass
class AlterRoleStmt(Statement):
    name: str = ""
    resource_queue: Optional[str] = None


@dataclass
class CreateResourceQueueStmt(Statement):
    name: str = ""
    options: dict = field(default_factory=dict)


@dataclass
class DropResourceQueueStmt(Statement):
    name: str = ""


@dataclass
class GrantStmt(Statement):
    privilege: str = "select"
    relation: str = ""
    role: str = ""
    revoke: bool = False


@dataclass
class AlterTableStmt(Statement):
    """ALTER TABLE name SET WITH (...) — online storage transformation,
    the paper's product-roadmap feature."""

    name: str = ""
    options: dict = field(default_factory=dict)


@dataclass
class CopyStmt(Statement):
    """COPY table FROM/TO 'hdfs path' — bulk text loading/unloading."""

    table: str = ""
    path: str = ""
    direction: str = "from"  # from | to
    delimiter: str = "|"


@dataclass
class VacuumStmt(Statement):
    """VACUUM [table] — reclaim aborted-append garbage and dead catalog
    row versions (the maintenance side of Section 5.4's design)."""

    table: Optional[str] = None
