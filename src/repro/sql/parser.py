"""Recursive-descent SQL parser.

Covers the dialect DESIGN.md promises: everything the 22 TPC-H queries
need plus HAWQ's DDL (DISTRIBUTED BY / RANDOMLY, PARTITION BY RANGE and
LIST, storage WITH options, external PXF tables) and transaction control.
"""

from __future__ import annotations

import datetime
from typing import List, Optional, Tuple

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import Token, TokenKind, tokenize

_JOIN_TYPES = ("INNER", "LEFT", "RIGHT", "FULL", "CROSS")
#: Keywords that can never start/be a bare column reference.
_RESERVED_IN_EXPRESSIONS = {
    "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "BY", "LIMIT",
    "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS", "ON", "AND", "OR",
    "UNION", "AS", "WHEN", "THEN", "ELSE", "END", "DISTINCT", "INTO",
    "VALUES",
}
#: Words that terminate an expression list / FROM item.
_CLAUSE_KEYWORDS = {
    "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "UNION",
    "ON", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS", "AND",
    "OR", "AS",
}


def parse_sql(text: str) -> List[ast.Statement]:
    """Parse a semicolon-separated script into statements."""
    parser = _Parser(tokenize(text))
    statements = []
    while not parser.at_eof():
        if parser.try_consume_op(";"):
            continue
        statements.append(parser.parse_statement())
    return statements


def parse_statement(text: str) -> ast.Statement:
    """Parse exactly one statement."""
    statements = parse_sql(text)
    if len(statements) != 1:
        raise SqlSyntaxError(f"expected one statement, got {len(statements)}")
    return statements[0]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ----------------------------------------------------------- token plumbing
    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def at_eof(self) -> bool:
        return self.peek().kind is TokenKind.EOF

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        return SqlSyntaxError(f"{message} (at {token.value!r}, pos {token.position})")

    def at_keyword(self, *words: str) -> bool:
        for offset, word in enumerate(words):
            token = self.peek(offset)
            if token.kind is not TokenKind.IDENT or not token.matches(word):
                return False
        return True

    def consume_keyword(self, *words: str) -> None:
        if not self.at_keyword(*words):
            raise self.error(f"expected {' '.join(words)}")
        self.pos += len(words)

    def try_consume_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.pos += len(words)
            return True
        return False

    def at_op(self, op: str) -> bool:
        token = self.peek()
        return token.kind is TokenKind.OPERATOR and token.value == op

    def consume_op(self, op: str) -> None:
        if not self.at_op(op):
            raise self.error(f"expected {op!r}")
        self.pos += 1

    def try_consume_op(self, op: str) -> bool:
        if self.at_op(op):
            self.pos += 1
            return True
        return False

    def consume_ident(self) -> str:
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            raise self.error("expected identifier")
        self.advance()
        return token.value

    def consume_string(self) -> str:
        token = self.peek()
        if token.kind is not TokenKind.STRING:
            raise self.error("expected string literal")
        self.advance()
        return token.value

    def consume_integer(self) -> int:
        token = self.peek()
        if token.kind is not TokenKind.NUMBER or "." in token.value:
            raise self.error("expected integer")
        self.advance()
        return int(token.value)

    # ------------------------------------------------------------- statements
    def parse_statement(self) -> ast.Statement:
        if self.at_keyword("SELECT"):
            return self.parse_select()
        if (
            self.at_keyword("CREATE", "EXTERNAL", "TABLE")
            or self.at_keyword("CREATE", "READABLE", "EXTERNAL", "TABLE")
            or self.at_keyword("CREATE", "WRITABLE", "EXTERNAL", "TABLE")
        ):
            return self.parse_create_external_table()
        if self.at_keyword("CREATE", "TABLE"):
            return self.parse_create_table()
        if self.at_keyword("CREATE", "VIEW") or self.at_keyword(
            "CREATE", "OR", "REPLACE", "VIEW"
        ):
            return self.parse_create_view()
        if self.at_keyword("CREATE", "ROLE") or self.at_keyword("CREATE", "USER"):
            return self.parse_create_role()
        if self.at_keyword("CREATE", "RESOURCE", "QUEUE"):
            return self.parse_create_resource_queue()
        if self.at_keyword("ALTER", "ROLE") or self.at_keyword("ALTER", "USER"):
            return self.parse_alter_role()
        if self.at_keyword("ALTER", "TABLE"):
            return self.parse_alter_table()
        if self.at_keyword("GRANT") or self.at_keyword("REVOKE"):
            return self.parse_grant()
        if self.at_keyword("DROP", "ROLE") or self.at_keyword("DROP", "USER"):
            self.advance()
            self.advance()
            return ast.DropRoleStmt(name=self.consume_ident())
        if self.at_keyword("DROP", "RESOURCE", "QUEUE"):
            self.consume_keyword("DROP", "RESOURCE", "QUEUE")
            return ast.DropResourceQueueStmt(name=self.consume_ident())
        if self.at_keyword("DROP"):
            return self.parse_drop()
        if self.at_keyword("INSERT"):
            return self.parse_insert()
        if self.at_keyword("BEGIN") or self.at_keyword("START", "TRANSACTION"):
            return self.parse_begin()
        if self.at_keyword("COMMIT") or self.at_keyword("END"):
            self.advance()
            self.try_consume_keyword("TRANSACTION")
            return ast.CommitStmt()
        if self.at_keyword("ROLLBACK") or self.at_keyword("ABORT"):
            self.advance()
            self.try_consume_keyword("TRANSACTION")
            return ast.RollbackStmt()
        if self.at_keyword("SET"):
            return self.parse_set()
        if self.at_keyword("ANALYZE"):
            self.advance()
            table = None
            if self.peek().kind is TokenKind.IDENT:
                table = self.consume_ident()
            return ast.AnalyzeStmt(table=table)
        if self.at_keyword("VACUUM"):
            self.advance()
            table = None
            if self.peek().kind is TokenKind.IDENT:
                table = self.consume_ident()
            return ast.VacuumStmt(table=table)
        if self.at_keyword("EXPLAIN"):
            self.advance()
            analyze = False
            verbose = False
            if self.try_consume_op("("):
                # PostgreSQL-style option list: EXPLAIN (ANALYZE, VERBOSE)
                while True:
                    option = self.consume_ident().upper()
                    if option == "ANALYZE":
                        analyze = True
                    elif option == "VERBOSE":
                        verbose = True
                    else:
                        raise self.error(
                            f"unknown EXPLAIN option {option!r}"
                        )
                    if not self.try_consume_op(","):
                        break
                self.consume_op(")")
            else:
                analyze = self.try_consume_keyword("ANALYZE")
                verbose = self.try_consume_keyword("VERBOSE")
            return ast.ExplainStmt(
                statement=self.parse_statement(),
                analyze=analyze,
                verbose=verbose,
            )
        if self.at_keyword("COPY"):
            return self.parse_copy()
        if self.at_keyword("TRUNCATE"):
            self.advance()
            self.try_consume_keyword("TABLE")
            return ast.TruncateStmt(table=self.consume_ident())
        raise self.error("unsupported statement")

    def parse_copy(self) -> ast.CopyStmt:
        self.consume_keyword("COPY")
        table = self.consume_ident()
        if self.try_consume_keyword("FROM"):
            direction = "from"
        elif self.try_consume_keyword("TO"):
            direction = "to"
        else:
            raise self.error("expected FROM or TO")
        path = self.consume_string()
        delimiter = "|"
        if self.try_consume_keyword("WITH"):
            self.try_consume_keyword("DELIMITER")
            delimiter = self.consume_string()
        elif self.try_consume_keyword("DELIMITER"):
            delimiter = self.consume_string()
        return ast.CopyStmt(
            table=table, path=path, direction=direction, delimiter=delimiter
        )

    def parse_begin(self) -> ast.BeginStmt:
        if self.at_keyword("START"):
            self.consume_keyword("START", "TRANSACTION")
        else:
            self.consume_keyword("BEGIN")
            self.try_consume_keyword("TRANSACTION")
            self.try_consume_keyword("WORK")
        isolation = None
        if self.try_consume_keyword("ISOLATION", "LEVEL"):
            words = [self.consume_ident()]
            while self.peek().kind is TokenKind.IDENT and not self.at_op(";"):
                words.append(self.consume_ident())
            isolation = " ".join(words)
        return ast.BeginStmt(isolation=isolation)

    def parse_set(self) -> ast.SetStmt:
        self.consume_keyword("SET")
        if self.try_consume_keyword("TRANSACTION", "ISOLATION", "LEVEL"):
            words = [self.consume_ident()]
            while self.peek().kind is TokenKind.IDENT:
                words.append(self.consume_ident())
            return ast.SetStmt(name="transaction_isolation", value=" ".join(words))
        name = self.consume_ident()
        if not (self.try_consume_op("=") or self.try_consume_keyword("TO")):
            raise self.error("expected = or TO in SET")
        token = self.advance()
        return ast.SetStmt(name=name.lower(), value=token.value)

    def parse_drop(self) -> ast.DropStmt:
        self.consume_keyword("DROP")
        if self.try_consume_keyword("EXTERNAL", "TABLE"):
            kind = "external table"
        elif self.try_consume_keyword("TABLE"):
            kind = "table"
        elif self.try_consume_keyword("VIEW"):
            kind = "view"
        else:
            raise self.error("expected TABLE or VIEW after DROP")
        if_exists = self.try_consume_keyword("IF", "EXISTS")
        name = self.consume_ident()
        return ast.DropStmt(object_kind=kind, name=name, if_exists=if_exists)

    # ------------------------------------------------------------------- DDL
    def parse_column_defs(self) -> List[ast.ColumnDef]:
        self.consume_op("(")
        columns = []
        while True:
            name = self.consume_ident()
            type_name = self.parse_type_name()
            not_null = False
            if self.try_consume_keyword("NOT", "NULL"):
                not_null = True
            elif self.try_consume_keyword("NULL"):
                not_null = False
            columns.append(ast.ColumnDef(name=name, type_name=type_name, not_null=not_null))
            if self.try_consume_op(","):
                continue
            self.consume_op(")")
            return columns

    def parse_type_name(self) -> str:
        parts = [self.consume_ident()]
        # multi-word type names: DOUBLE PRECISION, CHARACTER VARYING
        while self.peek().kind is TokenKind.IDENT and self.peek().matches("PRECISION"):
            parts.append(self.consume_ident())
        if self.peek().kind is TokenKind.IDENT and parts[-1].upper() == "CHARACTER":
            if self.peek().matches("VARYING"):
                self.advance()
                parts = ["varchar"]
        name = " ".join(parts)
        if self.at_op("("):
            self.consume_op("(")
            args = [str(self.consume_integer())]
            while self.try_consume_op(","):
                args.append(str(self.consume_integer()))
            self.consume_op(")")
            name += "(" + ",".join(args) + ")"
        return name

    def parse_create_table(self) -> ast.CreateTableStmt:
        self.consume_keyword("CREATE", "TABLE")
        name = self.consume_ident()
        columns = self.parse_column_defs()
        options = {}
        distributed_by = None
        distributed_randomly = False
        partition_by = None
        while True:
            if self.try_consume_keyword("WITH"):
                options.update(self.parse_options())
            elif self.try_consume_keyword("DISTRIBUTED", "RANDOMLY"):
                distributed_randomly = True
            elif self.try_consume_keyword("DISTRIBUTED", "BY"):
                self.consume_op("(")
                distributed_by = [self.consume_ident()]
                while self.try_consume_op(","):
                    distributed_by.append(self.consume_ident())
                self.consume_op(")")
            elif self.at_keyword("PARTITION", "BY"):
                partition_by = self.parse_partition_by()
            else:
                break
        return ast.CreateTableStmt(
            name=name,
            columns=columns,
            distributed_by=distributed_by,
            distributed_randomly=distributed_randomly,
            partition_by=partition_by,
            options=options,
        )

    def parse_options(self) -> dict:
        self.consume_op("(")
        options = {}
        if self.try_consume_op(")"):
            return options
        while True:
            key = self.consume_ident().lower()
            self.consume_op("=")
            token = self.advance()
            options[key] = token.value
            if self.try_consume_op(","):
                continue
            self.consume_op(")")
            return options

    def parse_partition_by(self) -> ast.PartitionByClause:
        self.consume_keyword("PARTITION", "BY")
        if self.try_consume_keyword("RANGE"):
            kind = "range"
        elif self.try_consume_keyword("LIST"):
            kind = "list"
        else:
            raise self.error("expected RANGE or LIST")
        self.consume_op("(")
        column = self.consume_ident()
        self.consume_op(")")
        clause = ast.PartitionByClause(column=column, kind=kind)
        self.consume_op("(")
        if kind == "range":
            while True:
                if self.try_consume_keyword("START"):
                    self.consume_op("(")
                    clause.start = self.parse_expression()
                    self.consume_op(")")
                    if self.try_consume_keyword("INCLUSIVE"):
                        clause.start_inclusive = True
                    elif self.try_consume_keyword("EXCLUSIVE"):
                        clause.start_inclusive = False
                elif self.try_consume_keyword("END"):
                    self.consume_op("(")
                    clause.end = self.parse_expression()
                    self.consume_op(")")
                    if self.try_consume_keyword("INCLUSIVE"):
                        clause.end_inclusive = True
                    elif self.try_consume_keyword("EXCLUSIVE"):
                        clause.end_inclusive = False
                elif self.try_consume_keyword("EVERY"):
                    self.consume_op("(")
                    clause.every = self.parse_expression()
                    self.consume_op(")")
                else:
                    break
                self.try_consume_op(",")
            self.consume_op(")")
        else:
            while True:
                self.consume_keyword("PARTITION")
                part_name = self.consume_ident()
                self.consume_keyword("VALUES")
                self.consume_op("(")
                values = [self.parse_expression()]
                while self.try_consume_op(","):
                    values.append(self.parse_expression())
                self.consume_op(")")
                clause.list_parts.append((part_name, values))
                if self.try_consume_op(","):
                    continue
                self.consume_op(")")
                break
        return clause

    def parse_create_external_table(self) -> ast.CreateExternalTableStmt:
        self.consume_keyword("CREATE")
        writable = self.try_consume_keyword("WRITABLE")
        self.try_consume_keyword("READABLE")
        self.consume_keyword("EXTERNAL", "TABLE")
        name = self.consume_ident()
        columns = self.parse_column_defs()
        self.consume_keyword("LOCATION")
        self.consume_op("(")
        location = self.consume_string()
        self.consume_op(")")
        format_name = "CUSTOM"
        format_options = {}
        if self.try_consume_keyword("FORMAT"):
            format_name = self.consume_string()
            if self.at_op("("):
                format_options = self.parse_options()
        return ast.CreateExternalTableStmt(
            name=name,
            columns=columns,
            location=location,
            format_name=format_name,
            format_options=format_options,
            writable=writable,
        )

    def parse_create_role(self) -> ast.CreateRoleStmt:
        self.consume_keyword("CREATE")
        self.advance()  # ROLE or USER
        name = self.consume_ident()
        superuser = False
        queue = None
        while True:
            if self.try_consume_keyword("SUPERUSER"):
                superuser = True
            elif self.try_consume_keyword("RESOURCE", "QUEUE"):
                queue = self.consume_ident()
            elif self.try_consume_keyword("LOGIN") or self.try_consume_keyword(
                "NOSUPERUSER"
            ):
                continue
            else:
                break
        return ast.CreateRoleStmt(name=name, superuser=superuser, resource_queue=queue)

    def parse_alter_role(self) -> ast.AlterRoleStmt:
        self.consume_keyword("ALTER")
        self.advance()  # ROLE or USER
        name = self.consume_ident()
        queue = None
        if self.try_consume_keyword("RESOURCE", "QUEUE"):
            queue = self.consume_ident()
        return ast.AlterRoleStmt(name=name, resource_queue=queue)

    def parse_alter_table(self) -> ast.AlterTableStmt:
        self.consume_keyword("ALTER", "TABLE")
        name = self.consume_ident()
        self.consume_keyword("SET")
        self.consume_keyword("WITH")
        options = self.parse_options()
        return ast.AlterTableStmt(name=name, options=options)

    def parse_create_resource_queue(self) -> ast.CreateResourceQueueStmt:
        self.consume_keyword("CREATE", "RESOURCE", "QUEUE")
        name = self.consume_ident()
        options = {}
        if self.try_consume_keyword("WITH"):
            options = self.parse_options()
        return ast.CreateResourceQueueStmt(name=name, options=options)

    def parse_grant(self) -> ast.GrantStmt:
        revoke = self.at_keyword("REVOKE")
        self.advance()  # GRANT or REVOKE
        privilege = self.consume_ident().lower()
        self.consume_keyword("ON")
        self.try_consume_keyword("TABLE")
        relation = self.consume_ident()
        if revoke:
            self.consume_keyword("FROM")
        else:
            self.consume_keyword("TO")
        role = self.consume_ident()
        return ast.GrantStmt(
            privilege=privilege, relation=relation, role=role, revoke=revoke
        )

    def parse_create_view(self) -> ast.CreateViewStmt:
        self.consume_keyword("CREATE")
        self.try_consume_keyword("OR", "REPLACE")
        self.consume_keyword("VIEW")
        name = self.consume_ident()
        self.consume_keyword("AS")
        query = self.parse_select()
        return ast.CreateViewStmt(name=name, query=query)

    def parse_insert(self) -> ast.InsertStmt:
        self.consume_keyword("INSERT", "INTO")
        table = self.consume_ident()
        columns = None
        if self.at_op("(") and not self.at_keyword("SELECT"):
            # Distinguish column list from INSERT INTO t (SELECT ...)
            save = self.pos
            self.consume_op("(")
            if self.at_keyword("SELECT"):
                self.pos = save
            else:
                columns = [self.consume_ident()]
                while self.try_consume_op(","):
                    columns.append(self.consume_ident())
                self.consume_op(")")
        if self.try_consume_keyword("VALUES"):
            rows = []
            while True:
                self.consume_op("(")
                row = [self.parse_expression()]
                while self.try_consume_op(","):
                    row.append(self.parse_expression())
                self.consume_op(")")
                rows.append(row)
                if not self.try_consume_op(","):
                    break
            return ast.InsertStmt(table=table, columns=columns, rows=rows)
        wrapped = self.try_consume_op("(")
        select = self.parse_select()
        if wrapped:
            self.consume_op(")")
        return ast.InsertStmt(table=table, columns=columns, select=select)

    # ----------------------------------------------------------------- SELECT
    def parse_select(self) -> ast.SelectStmt:
        self.consume_keyword("SELECT")
        stmt = ast.SelectStmt()
        if self.try_consume_keyword("DISTINCT"):
            stmt.distinct = True
        elif self.try_consume_keyword("ALL"):
            pass
        stmt.items = self.parse_select_items()
        if self.try_consume_keyword("FROM"):
            stmt.from_items = [self.parse_from_item()]
            while self.try_consume_op(","):
                stmt.from_items.append(self.parse_from_item())
        if self.try_consume_keyword("WHERE"):
            stmt.where = self.parse_expression()
        if self.try_consume_keyword("GROUP", "BY"):
            stmt.group_by = [self.parse_expression()]
            while self.try_consume_op(","):
                stmt.group_by.append(self.parse_expression())
        if self.try_consume_keyword("HAVING"):
            stmt.having = self.parse_expression()
        if self.try_consume_keyword("ORDER", "BY"):
            stmt.order_by = [self.parse_sort_item()]
            while self.try_consume_op(","):
                stmt.order_by.append(self.parse_sort_item())
        if self.try_consume_keyword("LIMIT"):
            stmt.limit = self.consume_integer()
        return stmt

    def parse_select_items(self) -> List[ast.SelectItem]:
        items = [self.parse_select_item()]
        while self.try_consume_op(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self) -> ast.SelectItem:
        if self.at_op("*"):
            self.advance()
            return ast.SelectItem(expr=ast.Star())
        # t.* form
        if (
            self.peek().kind is TokenKind.IDENT
            and self.peek(1).kind is TokenKind.OPERATOR
            and self.peek(1).value == "."
            and self.peek(2).kind is TokenKind.OPERATOR
            and self.peek(2).value == "*"
        ):
            table = self.consume_ident()
            self.advance()
            self.advance()
            return ast.SelectItem(expr=ast.Star(table=table))
        expr = self.parse_expression()
        alias = None
        if self.try_consume_keyword("AS"):
            alias = self.consume_ident()
        elif (
            self.peek().kind is TokenKind.IDENT
            and self.peek().value.upper() not in _CLAUSE_KEYWORDS
        ):
            alias = self.consume_ident()
        return ast.SelectItem(expr=expr, alias=alias)

    def parse_sort_item(self) -> ast.SortItem:
        expr = self.parse_expression()
        ascending = True
        if self.try_consume_keyword("ASC"):
            ascending = True
        elif self.try_consume_keyword("DESC"):
            ascending = False
        nulls_first = None
        if self.try_consume_keyword("NULLS", "FIRST"):
            nulls_first = True
        elif self.try_consume_keyword("NULLS", "LAST"):
            nulls_first = False
        return ast.SortItem(expr=expr, ascending=ascending, nulls_first=nulls_first)

    # ------------------------------------------------------------------- FROM
    def parse_from_item(self) -> ast.FromItem:
        item = self.parse_from_primary()
        while True:
            join_type = None
            if self.try_consume_keyword("CROSS", "JOIN"):
                join_type = "cross"
            elif self.try_consume_keyword("INNER", "JOIN"):
                join_type = "inner"
            elif self.try_consume_keyword("LEFT"):
                self.try_consume_keyword("OUTER")
                self.consume_keyword("JOIN")
                join_type = "left"
            elif self.try_consume_keyword("RIGHT"):
                self.try_consume_keyword("OUTER")
                self.consume_keyword("JOIN")
                join_type = "right"
            elif self.try_consume_keyword("FULL"):
                self.try_consume_keyword("OUTER")
                self.consume_keyword("JOIN")
                join_type = "full"
            elif self.try_consume_keyword("JOIN"):
                join_type = "inner"
            else:
                return item
            right = self.parse_from_primary()
            condition = None
            if join_type != "cross":
                self.consume_keyword("ON")
                condition = self.parse_expression()
            item = ast.JoinExpr(
                join_type=join_type, left=item, right=right, condition=condition
            )

    def parse_from_primary(self) -> ast.FromItem:
        if self.try_consume_op("("):
            if self.at_keyword("SELECT"):
                query = self.parse_select()
                self.consume_op(")")
                self.try_consume_keyword("AS")
                alias = self.consume_ident()
                return ast.SubquerySource(query=query, alias=alias)
            item = self.parse_from_item()
            self.consume_op(")")
            return item
        name = self.consume_ident()
        alias = None
        if self.try_consume_keyword("AS"):
            alias = self.consume_ident()
        elif (
            self.peek().kind is TokenKind.IDENT
            and self.peek().value.upper() not in _CLAUSE_KEYWORDS
            and not self.at_join_start()
        ):
            alias = self.consume_ident()
        return ast.TableRef(name=name, alias=alias)

    def at_join_start(self) -> bool:
        return any(self.at_keyword(t) for t in _JOIN_TYPES) or self.at_keyword("JOIN")

    # ------------------------------------------------------------ expressions
    def parse_expression(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.try_consume_keyword("OR"):
            left = ast.BinaryOp(op="or", left=left, right=self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.try_consume_keyword("AND"):
            left = ast.BinaryOp(op="and", left=left, right=self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.try_consume_keyword("NOT"):
            return ast.UnaryOp(op="not", operand=self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        while True:
            negated = False
            save = self.pos
            if self.try_consume_keyword("NOT"):
                negated = True
            if self.try_consume_keyword("LIKE"):
                pattern = self.parse_additive()
                left = ast.LikeExpr(operand=left, pattern=pattern, negated=negated)
                continue
            if self.try_consume_keyword("BETWEEN"):
                lower = self.parse_additive()
                self.consume_keyword("AND")
                upper = self.parse_additive()
                left = ast.BetweenExpr(
                    operand=left, lower=lower, upper=upper, negated=negated
                )
                continue
            if self.try_consume_keyword("IN"):
                self.consume_op("(")
                if self.at_keyword("SELECT"):
                    query = self.parse_select()
                    self.consume_op(")")
                    left = ast.InSubquery(operand=left, query=query, negated=negated)
                else:
                    items = [self.parse_expression()]
                    while self.try_consume_op(","):
                        items.append(self.parse_expression())
                    self.consume_op(")")
                    left = ast.InList(operand=left, items=items, negated=negated)
                continue
            if negated:
                self.pos = save  # NOT belonged to something else
                return left
            if self.try_consume_keyword("IS"):
                negated = self.try_consume_keyword("NOT")
                self.consume_keyword("NULL")
                left = ast.IsNullExpr(operand=left, negated=negated)
                continue
            for op in ("<=", ">=", "<>", "!=", "=", "<", ">"):
                if self.at_op(op):
                    self.advance()
                    normalized = "<>" if op == "!=" else op
                    right = self.parse_additive()
                    left = ast.BinaryOp(op=normalized, left=left, right=right)
                    break
            else:
                return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            if self.at_op("+") or self.at_op("-") or self.at_op("||"):
                op = self.advance().value
                left = ast.BinaryOp(op=op, left=left, right=self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while True:
            if self.at_op("*") or self.at_op("/") or self.at_op("%"):
                op = self.advance().value
                left = ast.BinaryOp(op=op, left=left, right=self.parse_unary())
            else:
                return left

    def parse_unary(self) -> ast.Expr:
        if self.try_consume_op("-"):
            return ast.UnaryOp(op="-", operand=self.parse_unary())
        if self.try_consume_op("+"):
            return self.parse_unary()
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self.try_consume_op("::"):
            expr = ast.CastExpr(operand=expr, type_name=self.parse_type_name())
        return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            if "." in token.value or "e" in token.value or "E" in token.value:
                return ast.Literal(float(token.value))
            return ast.Literal(int(token.value))
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.Literal(token.value)
        if self.try_consume_op("("):
            if self.at_keyword("SELECT"):
                query = self.parse_select()
                self.consume_op(")")
                return ast.SubqueryExpr(query=query)
            expr = self.parse_expression()
            self.consume_op(")")
            return expr
        if token.kind is not TokenKind.IDENT:
            raise self.error("expected expression")
        upper = token.value.upper()
        if upper in _RESERVED_IN_EXPRESSIONS:
            raise self.error("expected expression")
        if upper == "NULL":
            self.advance()
            return ast.Literal(None)
        if upper in ("TRUE", "FALSE"):
            self.advance()
            return ast.Literal(upper == "TRUE")
        if upper == "DATE" and self.peek(1).kind is TokenKind.STRING:
            self.advance()
            raw = self.consume_string()
            return ast.Literal(datetime.date.fromisoformat(raw))
        if upper == "INTERVAL" and self.peek(1).kind is TokenKind.STRING:
            self.advance()
            return self.parse_interval()
        if upper == "CASE":
            return self.parse_case()
        if upper == "CAST":
            self.advance()
            self.consume_op("(")
            operand = self.parse_expression()
            self.consume_keyword("AS")
            type_name = self.parse_type_name()
            self.consume_op(")")
            return ast.CastExpr(operand=operand, type_name=type_name)
        if upper == "EXTRACT":
            self.advance()
            self.consume_op("(")
            part = self.consume_ident().lower()
            self.consume_keyword("FROM")
            operand = self.parse_expression()
            self.consume_op(")")
            return ast.ExtractExpr(part=part, operand=operand)
        if upper == "SUBSTRING":
            return self.parse_substring()
        if upper == "EXISTS":
            self.advance()
            self.consume_op("(")
            query = self.parse_select()
            self.consume_op(")")
            return ast.ExistsExpr(query=query)
        # function call?
        if self.peek(1).kind is TokenKind.OPERATOR and self.peek(1).value == "(":
            return self.parse_func_call()
        # qualified or bare column reference
        name = self.consume_ident()
        if self.at_op(".") and self.peek(1).kind is TokenKind.IDENT:
            self.advance()
            column = self.consume_ident()
            return ast.ColumnRef(name=column, table=name)
        return ast.ColumnRef(name=name)

    def parse_interval(self) -> ast.Expr:
        raw = self.consume_string().strip()
        parts = raw.split()
        if len(parts) == 2:
            quantity, unit = float(parts[0]), parts[1]
        elif len(parts) == 1:
            quantity = float(parts[0])
            unit = self.consume_ident()
        else:
            raise self.error(f"bad interval literal {raw!r}")
        unit = unit.lower().rstrip("s")
        if unit not in ("year", "month", "day", "week"):
            raise self.error(f"unsupported interval unit {unit!r}")
        if unit == "week":
            unit, quantity = "day", quantity * 7
        return ast.IntervalLiteral(quantity=quantity, unit=unit)

    def parse_case(self) -> ast.Expr:
        self.consume_keyword("CASE")
        case = ast.CaseExpr()
        operand = None
        if not self.at_keyword("WHEN"):
            operand = self.parse_expression()
        while self.try_consume_keyword("WHEN"):
            condition = self.parse_expression()
            if operand is not None:
                condition = ast.BinaryOp(op="=", left=operand, right=condition)
            self.consume_keyword("THEN")
            result = self.parse_expression()
            case.whens.append((condition, result))
        if self.try_consume_keyword("ELSE"):
            case.else_result = self.parse_expression()
        self.consume_keyword("END")
        if not case.whens:
            raise self.error("CASE needs at least one WHEN")
        return case

    def parse_substring(self) -> ast.Expr:
        self.consume_keyword("SUBSTRING")
        self.consume_op("(")
        operand = self.parse_expression()
        if self.try_consume_keyword("FROM"):
            start = self.parse_expression()
            length = None
            if self.try_consume_keyword("FOR"):
                length = self.parse_expression()
        else:
            self.consume_op(",")
            start = self.parse_expression()
            length = None
            if self.try_consume_op(","):
                length = self.parse_expression()
        self.consume_op(")")
        args = [operand, start]
        if length is not None:
            args.append(length)
        return ast.FuncCall(name="substring", args=args)

    def parse_func_call(self) -> ast.Expr:
        name = self.consume_ident().lower()
        self.consume_op("(")
        if self.try_consume_op("*"):
            self.consume_op(")")
            return ast.FuncCall(name=name, star=True)
        distinct = self.try_consume_keyword("DISTINCT")
        args = []
        if not self.at_op(")"):
            args.append(self.parse_expression())
            while self.try_consume_op(","):
                args.append(self.parse_expression())
        self.consume_op(")")
        return ast.FuncCall(name=name, args=args, distinct=distinct)
