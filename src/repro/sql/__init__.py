"""SQL front end: lexer, parser, semantic analyzer, rewriter."""

from repro.sql.lexer import Token, TokenKind, tokenize
from repro.sql.parser import parse_sql, parse_statement

__all__ = ["Token", "TokenKind", "parse_sql", "parse_statement", "tokenize"]
