"""Hand-written SQL lexer.

Produces a flat token stream; keywords are not distinguished from
identifiers here (the parser matches identifier tokens against expected
keywords case-insensitively, as PostgreSQL's grammar effectively does for
most of its keyword classes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import SqlSyntaxError


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    position: int

    def matches(self, text: str) -> bool:
        """Case-insensitive keyword/operator match."""
        return self.value.upper() == text.upper()


_MULTI_CHAR_OPS = ("<=", ">=", "<>", "!=", "||", "::")
_SINGLE_CHAR_OPS = set("+-*/%(),;.=<>[]")


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        char = text[i]
        if char.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise SqlSyntaxError(f"unterminated comment at {i}")
            i = end + 2
            continue
        if char == "'":
            value, i = _read_string(text, i)
            tokens.append(Token(TokenKind.STRING, value, i))
            continue
        if char == '"':
            end = text.find('"', i + 1)
            if end < 0:
                raise SqlSyntaxError(f"unterminated quoted identifier at {i}")
            tokens.append(Token(TokenKind.IDENT, text[i + 1 : end], i))
            i = end + 1
            continue
        if char.isdigit() or (char == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # Don't swallow a trailing dot followed by non-digit
                    if i + 1 >= n or not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            if i < n and text[i] in "eE":
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j].isdigit():
                    i = j
                    while i < n and text[i].isdigit():
                        i += 1
            tokens.append(Token(TokenKind.NUMBER, text[start:i], start))
            continue
        if char.isalpha() or char == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            tokens.append(Token(TokenKind.IDENT, text[start:i], start))
            continue
        matched = False
        for op in _MULTI_CHAR_OPS:
            if text.startswith(op, i):
                tokens.append(Token(TokenKind.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if char in _SINGLE_CHAR_OPS:
            tokens.append(Token(TokenKind.OPERATOR, char, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {char!r} at position {i}")
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens


def _read_string(text: str, start: int) -> tuple:
    """Read a single-quoted string with '' as the escape for a quote."""
    i = start + 1
    out = []
    n = len(text)
    while i < n:
        char = text[i]
        if char == "'":
            if i + 1 < n and text[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(char)
        i += 1
    raise SqlSyntaxError(f"unterminated string literal at {start}")
