"""A simulated GemFireXD store and its PXF connector.

Paper Section 6.2 names the scenario: "it is now a valid choice to
choose to store the data in an in-memory transactional database such as
GemFireXD, and directly analyze that same data using HAWQ on demand."

The store is an in-memory, bucket-partitioned row store: each table is
hashed over N buckets spread across member hosts (GemFireXD's
partitioned-region model). Buckets are the connector's fragments, so
HAWQ scans the operational data in place, in parallel, with locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.catalog.schema import TableSchema, hash_values
from repro.catalog.stats import TableStats
from repro.errors import PxfError
from repro.pxf.api import (
    Accessor,
    Analyzer,
    Connector,
    DataFragment,
    Fragmenter,
    PushedFilter,
    Resolver,
)


@dataclass
class _GemTable:
    columns: List[str]
    num_buckets: int
    buckets: List[List[tuple]]


class SimulatedGemFireXD:
    """In-memory bucket-partitioned row store."""

    def __init__(self, members: Optional[List[str]] = None):
        self.members = members or ["gem0", "gem1"]
        self._tables: Dict[str, _GemTable] = {}

    def create_table(
        self, name: str, columns: List[str], num_buckets: int = 4
    ) -> None:
        name = name.lower()
        if name in self._tables:
            raise PxfError(f"GemFireXD table {name!r} already exists")
        self._tables[name] = _GemTable(
            columns=[c.lower() for c in columns],
            num_buckets=num_buckets,
            buckets=[[] for _ in range(num_buckets)],
        )

    def put(self, name: str, row: tuple) -> None:
        """Insert one row; the first column is the partitioning key."""
        table = self._table(name)
        if len(row) != len(table.columns):
            raise PxfError(
                f"row arity {len(row)} != {len(table.columns)} for {name!r}"
            )
        bucket = hash_values((row[0],), table.num_buckets)
        table.buckets[bucket].append(tuple(row))

    def put_all(self, name: str, rows: Iterable[tuple]) -> None:
        for row in rows:
            self.put(name, row)

    def bucket_host(self, name: str, bucket: int) -> str:
        return self.members[bucket % len(self.members)]

    def row_count(self, name: str) -> int:
        return sum(len(b) for b in self._table(name).buckets)

    def columns_of(self, name: str) -> List[str]:
        return list(self._table(name).columns)

    def scan_bucket(self, name: str, bucket: int) -> Iterator[tuple]:
        yield from self._table(name).buckets[bucket]

    def _table(self, name: str) -> _GemTable:
        table = self._tables.get(name.lower())
        if table is None:
            raise PxfError(f"GemFireXD table {name!r} does not exist")
        return table


class GemFireFragmenter(Fragmenter):
    def __init__(self, store: SimulatedGemFireXD):
        self.store = store

    def fragments(self, source: str) -> List[DataFragment]:
        table = self.store._table(source)
        return [
            DataFragment(
                source=source,
                index=bucket,
                host=self.store.bucket_host(source, bucket),
                payload=bucket,
            )
            for bucket in range(table.num_buckets)
        ]


class GemFireAccessor(Accessor):
    exact_filtering = True

    def __init__(self, store: SimulatedGemFireXD):
        self.store = store

    def records(
        self, fragment: DataFragment, filters: Iterable[PushedFilter]
    ) -> Iterator[tuple]:
        columns = self.store.columns_of(fragment.source)
        index_of = {name: i for i, name in enumerate(columns)}
        filters = list(filters)
        for row in self.store.scan_bucket(fragment.source, fragment.payload):
            ok = True
            for pushed in filters:
                position = index_of.get(pushed.column.lower())
                if position is None:
                    continue
                if not pushed.matches(row[position]):
                    ok = False
                    break
            if ok:
                yield row


class GemFireResolver(Resolver):
    """Positional binding: the external table mirrors the store table."""

    def __init__(self, store: SimulatedGemFireXD):
        self.store = store

    def resolve(self, record: tuple, schema: TableSchema) -> Tuple[object, ...]:
        if len(record) != len(schema.columns):
            raise PxfError("GemFireXD external table column count mismatch")
        return tuple(
            column.type.coerce(value) if value is not None else None
            for column, value in zip(schema.columns, record)
        )


class GemFireAnalyzer(Analyzer):
    def __init__(self, store: SimulatedGemFireXD):
        self.store = store

    def analyze(self, source: str, schema: TableSchema) -> TableStats:
        count = float(self.store.row_count(source))
        return TableStats(row_count=count, total_bytes=count * 48.0)


def GemFireConnector(store: SimulatedGemFireXD) -> Connector:
    """Build the GemFireXD connector over a store instance."""
    return Connector(
        profile="gemfirexd",
        fragmenter=GemFireFragmenter(store),
        accessor=GemFireAccessor(store),
        resolver=GemFireResolver(store),
        analyzer=GemFireAnalyzer(store),
        bytes_per_record=48.0,
    )
