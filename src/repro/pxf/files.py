"""PXF connectors for HDFS file formats: text/CSV, JSON-lines, and a
sequence-file-like binary record format.

Fragments are HDFS blocks (rounded to record boundaries by reading whole
files per fragment range), located on the block's DataNodes — exactly
the locality information the paper's Fragmenter API exposes.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.catalog.schema import TableSchema, TypeKind
from repro.catalog.stats import TableStats
from repro.errors import PxfError
from repro.hdfs import Hdfs
from repro.pxf.api import (
    Accessor,
    Analyzer,
    Connector,
    DataFragment,
    Fragmenter,
    PushedFilter,
    Resolver,
    Writer,
)


@dataclass(frozen=True)
class _FileSpan:
    path: str
    #: Index of this fragment among the file's fragments, and the total,
    #: so the accessor can stripe records without splitting mid-record.
    part: int
    parts: int


class HdfsFileFragmenter(Fragmenter):
    """One fragment per HDFS block of each matching file."""

    def __init__(self, fs: Hdfs):
        self.fs = fs

    def fragments(self, source: str) -> List[DataFragment]:
        out: List[DataFragment] = []
        # pxf:// locations carry the path without its leading slash.
        if not source.startswith("/"):
            source = "/" + source
        statuses = self.fs.list_status(source)
        if not statuses:
            raise PxfError(f"no HDFS files under {source!r}")
        index = 0
        for status in statuses:
            locations = self.fs.block_locations(status.path)
            parts = max(len(locations), 1)
            for part in range(parts):
                hosts = locations[part].hosts if locations else []
                out.append(
                    DataFragment(
                        source=source,
                        index=index,
                        host=hosts[0] if hosts else None,
                        payload=_FileSpan(status.path, part, parts),
                    )
                )
                index += 1
        return out


class _StripedFileAccessor(Accessor):
    """Reads whole files and stripes records across the file's fragments
    (record i goes to fragment ``i % parts``), so records never split."""

    def __init__(self, fs: Hdfs):
        self.fs = fs

    def records(
        self, fragment: DataFragment, filters: Iterable[PushedFilter]
    ) -> Iterator[object]:
        span: _FileSpan = fragment.payload
        client = self.fs.client()
        for i, record in enumerate(self._parse(client.read_file(span.path))):
            if i % span.parts == span.part:
                yield record

    def _parse(self, data: bytes) -> Iterator[object]:
        raise NotImplementedError


class TextAccessor(_StripedFileAccessor):
    def _parse(self, data: bytes) -> Iterator[str]:
        for line in data.decode("utf-8").splitlines():
            if line:
                yield line


class TextResolver(Resolver):
    """Delimited text (default '|', the TPC-H dbgen delimiter)."""

    def __init__(self, delimiter: str = "|"):
        self.delimiter = delimiter

    def resolve(self, record: str, schema: TableSchema) -> Tuple[object, ...]:
        parts = record.rstrip(self.delimiter).split(self.delimiter)
        if len(parts) < len(schema.columns):
            raise PxfError(
                f"text record has {len(parts)} fields, need {len(schema.columns)}"
            )
        out = []
        for column, raw in zip(schema.columns, parts):
            if raw == "":
                out.append(None)
            else:
                out.append(column.type.coerce(raw))
        return tuple(out)


class JsonAccessor(_StripedFileAccessor):
    def _parse(self, data: bytes) -> Iterator[dict]:
        for line in data.decode("utf-8").splitlines():
            if line.strip():
                yield json.loads(line)


class JsonResolver(Resolver):
    def resolve(self, record: dict, schema: TableSchema) -> Tuple[object, ...]:
        out = []
        for column in schema.columns:
            raw = record.get(column.name)
            out.append(column.type.coerce(raw) if raw is not None else None)
        return tuple(out)


#: Sequence-file record framing: record length then schema-encoded row.
_SEQ_HEADER = struct.Struct("<I")


def write_sequence_file(
    fs: Hdfs, path: str, rows: Iterable[Tuple], schema: TableSchema
) -> int:
    """Writer utility (the OutputFormat side of paper Section 2.1):
    external systems use this to hand data to HAWQ without SQL."""
    client = fs.client()
    data = bytearray()
    count = 0
    for row in rows:
        body = bytearray()
        schema.encode_row(schema.coerce_row(row), body)
        data += _SEQ_HEADER.pack(len(body))
        data += body
        count += 1
    client.write_file(path, bytes(data))
    return count


class SequenceFileAccessor(_StripedFileAccessor):
    def __init__(self, fs: Hdfs, schema_hint: Optional[TableSchema] = None):
        super().__init__(fs)
        self.schema_hint = schema_hint

    def _parse(self, data: bytes) -> Iterator[bytes]:
        offset = 0
        while offset < len(data):
            (length,) = _SEQ_HEADER.unpack_from(data, offset)
            offset += _SEQ_HEADER.size
            yield bytes(data[offset : offset + length])
            offset += length


class SequenceFileResolver(Resolver):
    def resolve(self, record: bytes, schema: TableSchema) -> Tuple[object, ...]:
        row, _ = schema.decode_row(record, 0)
        return row


class FileAnalyzer(Analyzer):
    """Estimates row counts from file sizes (bytes / avg record size)."""

    def __init__(self, fs: Hdfs, bytes_per_record: float):
        self.fs = fs
        self.bytes_per_record = bytes_per_record

    def analyze(self, source: str, schema: TableSchema) -> TableStats:
        if not source.startswith("/"):
            source = "/" + source
        total = sum(s.length for s in self.fs.list_status(source))
        rows = max(total / self.bytes_per_record, 1.0)
        return TableStats(row_count=rows, total_bytes=float(total))


class TextWriter(Writer):
    """Exports rows as delimited text, appending to the location path."""

    def __init__(self, fs: Hdfs, delimiter: str = "|"):
        self.fs = fs
        self.delimiter = delimiter

    def write(self, source, rows, schema):
        """Write rows as delimited text; returns the bytes written so
        the caller can charge them to the simulated clock."""
        if not source.startswith("/"):
            source = "/" + source
        lines = []
        for row in rows:
            lines.append(
                self.delimiter.join(
                    "" if v is None else (v.isoformat() if hasattr(v, "isoformat") else str(v))
                    for v in row
                )
            )
        data = ("\n".join(lines) + "\n").encode("utf-8") if lines else b""
        client = self.fs.client()
        if client.exists(source):
            writer = client.append(source)
            writer.write(data)
            writer.close()
        else:
            client.write_file(source, data)
        return len(data)
        return len(data)


class JsonWriter(Writer):
    """Exports rows as JSON lines."""

    def __init__(self, fs: Hdfs):
        self.fs = fs

    def write(self, source, rows, schema):
        if not source.startswith("/"):
            source = "/" + source
        lines = []
        for row in rows:
            record = {}
            for column, value in zip(schema.columns, row):
                if hasattr(value, "isoformat"):
                    value = value.isoformat()
                record[column.name] = value
            lines.append(json.dumps(record))
        data = ("\n".join(lines) + "\n").encode("utf-8") if lines else b""
        client = self.fs.client()
        if client.exists(source):
            writer = client.append(source)
            writer.write(data)
            writer.close()
        else:
            client.write_file(source, data)
        return len(data)


def TextConnector(fs: Hdfs, delimiter: str = "|") -> Connector:
    return Connector(
        profile="hdfstextsimple",
        fragmenter=HdfsFileFragmenter(fs),
        accessor=TextAccessor(fs),
        resolver=TextResolver(delimiter),
        analyzer=FileAnalyzer(fs, 80.0),
        writer=TextWriter(fs, delimiter),
        bytes_per_record=80.0,
    )


def JsonConnector(fs: Hdfs) -> Connector:
    return Connector(
        profile="json",
        fragmenter=HdfsFileFragmenter(fs),
        accessor=JsonAccessor(fs),
        resolver=JsonResolver(),
        analyzer=FileAnalyzer(fs, 120.0),
        writer=JsonWriter(fs),
        bytes_per_record=120.0,
    )


def SequenceFileConnector(fs: Hdfs) -> Connector:
    return Connector(
        profile="sequencefile",
        fragmenter=HdfsFileFragmenter(fs),
        accessor=SequenceFileAccessor(fs),
        resolver=SequenceFileResolver(),
        analyzer=FileAnalyzer(fs, 64.0),
        bytes_per_record=64.0,
    )
