"""The PXF service: profile registry, location parsing, fragment
assignment, filter pushdown and statistics (paper Sections 6.1-6.3).

``scan`` is what the executor's ExternalScan calls per segment: the
registry fragments the source, assigns fragments to segments **locality
first** (a fragment whose host matches a segment's host goes to that
segment), falls back to round-robin, converts the planner's pushed
predicates into connector filters, and streams resolved tuples while
charging the simulated cost model.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.catalog.stats import TableStats
from repro.errors import PxfError
from repro.hdfs import Hdfs
from repro.planner import exprs as ex
from repro.pxf.api import Connector, DataFragment, PushedFilter
from repro.simtime import CostAccumulator


class PxfRegistry:
    """Holds connectors by profile name and serves external scans."""

    def __init__(self) -> None:
        self._connectors: Dict[str, Connector] = {}
        self._hdfs: Optional[Hdfs] = None

    # ---------------------------------------------------------- registration
    def register(self, connector: Connector) -> None:
        self._connectors[connector.profile.lower()] = connector

    def attach_hdfs(self, fs: Hdfs) -> None:
        """Register the built-in HDFS file connectors against ``fs``."""
        from repro.pxf.files import (
            JsonConnector,
            SequenceFileConnector,
            TextConnector,
        )

        self._hdfs = fs
        self.register(TextConnector(fs))
        self.register(JsonConnector(fs))
        self.register(SequenceFileConnector(fs))

    def connector(self, profile: str) -> Connector:
        connector = self._connectors.get(profile.lower())
        if connector is None:
            raise PxfError(
                f"no PXF connector for profile {profile!r}; "
                f"registered: {sorted(self._connectors)}"
            )
        return connector

    # -------------------------------------------------------------- location
    def parse_location(
        self, location: str, format_name: str, format_options: dict
    ) -> Dict[str, object]:
        """Parse ``pxf://<service>/<source>?profile=<name>&k=v...``."""
        parsed = urllib.parse.urlparse(location)
        if parsed.scheme != "pxf":
            raise PxfError(f"not a pxf:// location: {location!r}")
        options = {
            k.lower(): v[0] for k, v in urllib.parse.parse_qs(parsed.query).items()
        }
        profile = options.pop("profile", None)
        if profile is None:
            raise PxfError("pxf location must carry ?profile=<name>")
        return {
            "service": parsed.netloc,
            "source": parsed.path.lstrip("/"),
            "profile": profile,
            "options": options,
            "format": format_name,
            "format_options": dict(format_options),
        }

    # ------------------------------------------------------------------ scan
    def scan(
        self,
        pxf_info: Dict[str, object],
        schema: TableSchema,
        segment_id: int,
        num_segments: int,
        pushed: Sequence[ex.BoundExpr],
        acc: CostAccumulator,
        segment_hosts: Optional[Dict[int, str]] = None,
    ) -> Iterator[Tuple[object, ...]]:
        connector = self.connector(pxf_info["profile"])
        fragments = connector.fragmenter.fragments(pxf_info["source"])
        mine = self.assign_fragments(fragments, num_segments, segment_hosts).get(
            segment_id, []
        )
        filters = self.convert_filters(pushed, schema)
        count = 0
        for fragment in mine:
            for record in connector.accessor.records(fragment, filters):
                row = connector.resolver.resolve(record, schema)
                count += 1
                yield row
        acc.disk_read(int(count * connector.bytes_per_record))
        acc.cpu_tuples(count, ncolumns=len(schema.columns), weight=2.0)

    def assign_fragments(
        self,
        fragments: List[DataFragment],
        num_segments: int,
        segment_hosts: Optional[Dict[int, str]] = None,
    ) -> Dict[int, List[DataFragment]]:
        """Locality-aware fragment assignment (paper Section 6.3)."""
        assignment: Dict[int, List[DataFragment]] = {
            i: [] for i in range(num_segments)
        }
        host_to_segments: Dict[str, List[int]] = {}
        for seg, host in (segment_hosts or {}).items():
            host_to_segments.setdefault(host, []).append(seg)
        for fragment in fragments:
            local = host_to_segments.get(fragment.host or "", [])
            if local:
                # Least-loaded local segment.
                target = min(local, key=lambda s: len(assignment[s]))
            else:
                # No local segment: least-loaded segment overall.
                target = min(range(num_segments), key=lambda s: len(assignment[s]))
            assignment[target].append(fragment)
        return assignment

    def convert_filters(
        self, pushed: Sequence[ex.BoundExpr], schema: TableSchema
    ) -> List[PushedFilter]:
        """Planner conjuncts -> connector (column, op, literal) filters."""
        filters: List[PushedFilter] = []
        for qual in pushed:
            if not isinstance(qual, ex.BOp):
                continue
            var, const, op = None, None, qual.op
            if isinstance(qual.left, ex.BVar) and isinstance(qual.right, ex.BConst):
                var, const = qual.left, qual.right.value
            elif isinstance(qual.right, ex.BVar) and isinstance(qual.left, ex.BConst):
                var, const = qual.right, qual.left.value
                op = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            if var is None:
                continue
            filters.append(
                PushedFilter(column=schema.columns[var.col].name, op=op, value=const)
            )
        return filters

    # ------------------------------------------------------------------ write
    def write(
        self,
        pxf_info: Dict[str, object],
        schema: TableSchema,
        rows: Sequence[Tuple],
        acc: Optional[CostAccumulator] = None,
    ) -> int:
        """Export rows through a WRITABLE external table (Section 6)."""
        connector = self.connector(pxf_info["profile"])
        if connector.writer is None:
            raise PxfError(
                f"profile {pxf_info['profile']!r} has no writer plugin"
            )
        nbytes = connector.writer.write(pxf_info["source"], rows, schema)
        if acc is not None:
            acc.disk_write(nbytes, replicated=True)
            acc.cpu_tuples(len(rows), ncolumns=len(schema.columns))
        return len(rows)

    # ------------------------------------------------------------- analytics
    def analyze(
        self, pxf_info: Dict[str, object], schema: TableSchema
    ) -> TableStats:
        """ANALYZE on a PXF table (paper Section 6.3)."""
        connector = self.connector(pxf_info["profile"])
        if connector.analyzer is None:
            return TableStats(row_count=1000.0, total_bytes=100_000.0)
        return connector.analyzer.analyze(pxf_info["source"], schema)
