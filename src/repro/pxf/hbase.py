"""A simulated HBase store and its PXF connector.

The store is a sorted KV table: rows keyed by a byte/str row key, values
grouped into column families with qualifiers (``family:qualifier``).
Tables are split into *regions* (contiguous key ranges) spread across
region-server hosts — those regions are the connector's data fragments,
so HAWQ reads an HBase table with the same locality-aware parallelism
the paper describes.

External-table columns map to HBase as in the paper's example::

    CREATE EXTERNAL TABLE my_hbase_sales (
        recordkey BYTEA, "details:storeid" INT, "details:price" DOUBLE)
    LOCATION ('pxf://<svc>/sales?profile=HBase') ...

``recordkey`` binds to the row key; ``family:qualifier`` columns bind to
cells.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.catalog.schema import TableSchema
from repro.catalog.stats import TableStats
from repro.errors import PxfError
from repro.pxf.api import (
    Accessor,
    Analyzer,
    Connector,
    DataFragment,
    Fragmenter,
    PushedFilter,
    Resolver,
)


@dataclass
class HBaseRegion:
    """One contiguous key range served by one region server."""

    start_key: Optional[object]
    end_key: Optional[object]  # exclusive
    host: str

    def holds(self, key: object) -> bool:
        if self.start_key is not None and key < self.start_key:
            return False
        if self.end_key is not None and key >= self.end_key:
            return False
        return True


class SimulatedHBase:
    """A tiny region-sharded, sorted KV store."""

    def __init__(self, region_servers: Optional[List[str]] = None):
        self.region_servers = region_servers or ["rs0", "rs1", "rs2"]
        # table -> sorted list of (rowkey, {family:qualifier: value})
        self._tables: Dict[str, List[Tuple[object, Dict[str, object]]]] = {}
        self._regions: Dict[str, List[HBaseRegion]] = {}
        self._num_regions: Dict[str, int] = {}

    def create_table(self, name: str, num_regions: int = 3) -> None:
        if name in self._tables:
            raise PxfError(f"HBase table {name!r} already exists")
        self._tables[name] = []
        self._regions[name] = []  # computed lazily after data arrives
        self._num_regions[name] = num_regions

    def put(self, table: str, rowkey: object, values: Dict[str, object]) -> None:
        """Insert or update one row; ``values`` keyed 'family:qualifier'."""
        rows = self._table(table)
        keys = [k for k, _ in rows]
        index = bisect.bisect_left(keys, rowkey)
        if index < len(rows) and rows[index][0] == rowkey:
            rows[index][1].update(values)
        else:
            rows.insert(index, (rowkey, dict(values)))
        self._regions[table] = []  # invalidate region split

    def get(self, table: str, rowkey: object) -> Optional[Dict[str, object]]:
        rows = self._table(table)
        keys = [k for k, _ in rows]
        index = bisect.bisect_left(keys, rowkey)
        if index < len(rows) and rows[index][0] == rowkey:
            return dict(rows[index][1])
        return None

    def regions(self, table: str) -> List[HBaseRegion]:
        """Current region split of the table (rebuilt after writes)."""
        rows = self._table(table)
        cached = self._regions.get(table)
        if cached:
            return cached
        num = self._num_regions.get(table, 3)
        num = max(1, min(num, max(len(rows), 1)))
        boundaries: List[Optional[object]] = [None]
        for i in range(1, num):
            boundaries.append(rows[i * len(rows) // num][0] if rows else None)
        boundaries.append(None)
        regions = []
        for i in range(num):
            regions.append(
                HBaseRegion(
                    start_key=boundaries[i],
                    end_key=boundaries[i + 1],
                    host=self.region_servers[i % len(self.region_servers)],
                )
            )
        self._regions[table] = regions
        return regions

    def scan_region(
        self, table: str, region: HBaseRegion
    ) -> Iterator[Tuple[object, Dict[str, object]]]:
        for rowkey, values in self._table(table):
            if region.holds(rowkey):
                yield rowkey, values

    def row_count(self, table: str) -> int:
        return len(self._table(table))

    def _table(self, name: str):
        rows = self._tables.get(name)
        if rows is None:
            raise PxfError(f"HBase table {name!r} does not exist")
        return rows


# ------------------------------------------------------------------ plugins
class HBaseFragmenter(Fragmenter):
    def __init__(self, store: SimulatedHBase):
        self.store = store

    def fragments(self, source: str) -> List[DataFragment]:
        return [
            DataFragment(source=source, index=i, host=region.host, payload=region)
            for i, region in enumerate(self.store.regions(source))
        ]


class HBaseAccessor(Accessor):
    exact_filtering = False  # rowkey filters are exact; cell filters re-checked

    def __init__(self, store: SimulatedHBase):
        self.store = store

    def records(
        self, fragment: DataFragment, filters: Iterable[PushedFilter]
    ) -> Iterator[Tuple[object, Dict[str, object]]]:
        rowkey_filters = [f for f in filters if f.column == "recordkey"]
        cell_filters = [f for f in filters if f.column != "recordkey"]
        for rowkey, values in self.store.scan_region(
            fragment.source, fragment.payload
        ):
            if not all(f.matches(rowkey) for f in rowkey_filters):
                continue
            if not all(f.matches(values.get(f.column)) for f in cell_filters):
                continue
            yield rowkey, values


class HBaseResolver(Resolver):
    def resolve(self, record, schema: TableSchema) -> Tuple[object, ...]:
        rowkey, values = record
        out = []
        for column in schema.columns:
            if column.name.lower() == "recordkey":
                out.append(column.type.coerce(rowkey))
            else:
                raw = values.get(column.name)
                out.append(column.type.coerce(raw) if raw is not None else None)
        return tuple(out)


class HBaseAnalyzer(Analyzer):
    def __init__(self, store: SimulatedHBase):
        self.store = store

    def analyze(self, source: str, schema: TableSchema) -> TableStats:
        count = float(self.store.row_count(source))
        return TableStats(row_count=count, total_bytes=count * 64.0)


def HBaseConnector(store: SimulatedHBase) -> Connector:
    """Build the built-in HBase connector over a store instance."""
    return Connector(
        profile="hbase",
        fragmenter=HBaseFragmenter(store),
        accessor=HBaseAccessor(store),
        resolver=HBaseResolver(),
        analyzer=HBaseAnalyzer(store),
        bytes_per_record=64.0,
    )
