"""PXF: the Pivotal Extension Framework (paper Section 6).

An extensible connector API — Fragmenter / Accessor / Resolver /
Analyzer — that lets HAWQ's planner and executor run SQL over any
external data store. Built-in connectors: a simulated HBase store,
HDFS text/CSV files, JSON-lines files, and sequence files.
"""

from repro.pxf.api import (
    Accessor,
    Analyzer,
    DataFragment,
    Fragmenter,
    PushedFilter,
    Resolver,
)
from repro.pxf.hbase import HBaseConnector, SimulatedHBase
from repro.pxf.registry import PxfRegistry

__all__ = [
    "Accessor",
    "Analyzer",
    "DataFragment",
    "Fragmenter",
    "HBaseConnector",
    "PushedFilter",
    "PxfRegistry",
    "Resolver",
    "SimulatedHBase",
]
