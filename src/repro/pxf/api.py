"""The PXF connector plugin API (paper Section 6.4).

A connector implements three plugins (plus an optional fourth):

* :class:`Fragmenter` — given a data source, list its fragments and
  their locations (an HDFS block, an HBase region, ...);
* :class:`Accessor` — given a fragment, read its raw records;
* :class:`Resolver` — deserialize a raw record into column values
  matching the external table's schema;
* :class:`Analyzer` (optional) — estimate statistics for the planner.

Connectors may honour *filter pushdown*: the planner hands simple
``column OP literal`` predicates to the accessor so filtering happens
where the data lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.catalog.schema import TableSchema
from repro.catalog.stats import TableStats
from repro.errors import PxfError


@dataclass(frozen=True)
class DataFragment:
    """One parallel unit of work."""

    source: str
    index: int
    #: Host holding the fragment (for locality-aware assignment).
    host: Optional[str] = None
    #: Connector-private payload (region bounds, block range, ...).
    payload: object = None


@dataclass(frozen=True)
class PushedFilter:
    """One predicate pushed down to the connector."""

    column: str
    op: str  # = < <= > >=
    value: object

    def matches(self, value: object) -> bool:
        if value is None:
            return False
        # Stores hold raw (often textual) values; the predicate literal is
        # typed by the external table's schema. Coerce rawside like the
        # resolver eventually will, so pushdown and post-filtering agree.
        if isinstance(self.value, (int, float)) and isinstance(value, str):
            try:
                value = type(self.value)(value)
            except ValueError:
                return False
        if self.op == "=":
            return value == self.value
        if self.op == "<":
            return value < self.value
        if self.op == "<=":
            return value <= self.value
        if self.op == ">":
            return value > self.value
        if self.op == ">=":
            return value >= self.value
        raise PxfError(f"unsupported pushed operator {self.op!r}")


class Fragmenter:
    """Given a data source location and name, return its fragments."""

    def fragments(self, source: str) -> List[DataFragment]:
        raise NotImplementedError


class Accessor:
    """Given a fragment, read all the records that belong to it."""

    def records(
        self, fragment: DataFragment, filters: Iterable[PushedFilter]
    ) -> Iterator[object]:
        raise NotImplementedError

    #: Set False if the accessor ignores ``filters`` (the engine will
    #: re-check rows; True lets connectors claim exact pushdown).
    exact_filtering = False


class Resolver:
    """Parse one raw record into schema-ordered column values."""

    def resolve(self, record: object, schema: TableSchema) -> Tuple[object, ...]:
        raise NotImplementedError


class Analyzer:
    """Optional statistics estimation for the query planner."""

    def analyze(self, source: str, schema: TableSchema) -> TableStats:
        raise NotImplementedError


class Writer:
    """Optional export plugin: WRITABLE external tables (paper Section
    6: \"PXF can export internal HAWQ data into files on HDFS\").

    Returns the number of bytes written to the external store."""

    def write(
        self, source: str, rows: Iterable[Tuple], schema: TableSchema
    ) -> int:
        raise NotImplementedError


@dataclass
class Connector:
    """A bundle of plugins registered under a profile name."""

    profile: str
    fragmenter: Fragmenter
    accessor: Accessor
    resolver: Resolver
    analyzer: Optional[Analyzer] = None
    writer: Optional["Writer"] = None
    #: Average raw bytes per record, for the simulated cost model.
    bytes_per_record: float = 100.0
