"""Simulated HDFS: append-only replicated block storage with truncate.

HAWQ stores all user data on HDFS and relies on it for replication and
fault tolerance (paper Section 2). The one operation Pivotal added to
their HDFS fork — ``truncate(path, length)`` (Section 5.3) — is
implemented here with the paper's semantics and is what transaction
rollback uses.
"""

from repro.hdfs.datanode import DataNode, DiskVolume
from repro.hdfs.filesystem import BlockLocation, FileStatus, Hdfs, HdfsClient

__all__ = [
    "BlockLocation",
    "DataNode",
    "DiskVolume",
    "FileStatus",
    "Hdfs",
    "HdfsClient",
]
