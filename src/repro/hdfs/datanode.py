"""DataNodes: block replica storage spread over failable disk volumes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import HdfsError


@dataclass
class DiskVolume:
    """One physical disk in a DataNode.

    When a disk fails, HDFS removes the volume from the valid list and
    every replica on it becomes unreadable on this node (paper Section
    2.6, "two level disk failure fault tolerance").
    """

    index: int
    failed: bool = False
    blocks: Dict[int, bytes] = field(default_factory=dict)

    @property
    def used_bytes(self) -> int:
        return sum(len(data) for data in self.blocks.values())


class DataNode:
    """Stores block replicas for the NameNode; one per segment host."""

    def __init__(self, host: str, num_disks: int = 12):
        if num_disks < 1:
            raise ValueError("a DataNode needs at least one disk")
        self.host = host
        self.disks: List[DiskVolume] = [DiskVolume(i) for i in range(num_disks)]
        self.alive = True
        self._next_disk = 0

    # ----------------------------------------------------------- replica ops
    def store_block(self, block_id: int, data: bytes) -> None:
        """Store a replica on the next healthy disk (round-robin)."""
        disk = self._pick_disk()
        disk.blocks[block_id] = data

    def read_block(self, block_id: int) -> bytes:
        """Read a replica; raises if it is missing or its disk failed."""
        for disk in self.disks:
            if block_id in disk.blocks:
                if disk.failed:
                    raise HdfsError(
                        f"block {block_id} on failed disk {disk.index} of {self.host}"
                    )
                return disk.blocks[block_id]
        raise HdfsError(f"block {block_id} not on DataNode {self.host}")

    def has_block(self, block_id: int) -> bool:
        """True if a readable replica of the block lives here."""
        return any(
            block_id in disk.blocks and not disk.failed for disk in self.disks
        )

    def drop_block(self, block_id: int) -> None:
        for disk in self.disks:
            disk.blocks.pop(block_id, None)

    def replace_block(self, block_id: int, data: bytes) -> None:
        """Overwrite the replica in place (used by truncate's tail copy)."""
        for disk in self.disks:
            if block_id in disk.blocks:
                disk.blocks[block_id] = data
                return
        self.store_block(block_id, data)

    # ---------------------------------------------------------------- faults
    def fail_disk(self, disk_index: int) -> List[int]:
        """Mark one disk failed; returns the block ids that lost a replica."""
        disk = self.disks[disk_index]
        disk.failed = True
        return list(disk.blocks)

    @property
    def healthy_disks(self) -> List[DiskVolume]:
        return [disk for disk in self.disks if not disk.failed]

    def _pick_disk(self) -> DiskVolume:
        healthy = self.healthy_disks
        if not self.alive or not healthy:
            raise HdfsError(f"DataNode {self.host} has no healthy disk")
        disk = healthy[self._next_disk % len(healthy)]
        self._next_disk += 1
        return disk
