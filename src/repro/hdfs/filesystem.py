"""The NameNode namespace, clients, leases, append and truncate.

Semantics follow the paper (Section 5.3) and HDFS:

* files are append-only sequences of replicated blocks;
* a single writer/appender/truncater per file, enforced by leases;
* ``truncate(path, length)`` only shrinks; at a block boundary the
  NameNode just drops tail blocks, otherwise the client copies the last
  surviving partial block to a temporary file, drops the tail, and splices
  the copy back — atomically from the reader's point of view;
* disk and node failures are masked by re-replication from surviving
  replicas.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import (
    FileAlreadyExists,
    FileNotFoundInHdfs,
    HdfsError,
    LeaseConflict,
    ReplicationError,
    TruncateError,
)
from repro.hdfs.datanode import DataNode
from repro.util import DeterministicRng


@dataclass
class BlockInfo:
    """NameNode-side metadata for one block."""

    block_id: int
    length: int
    hosts: List[str]


@dataclass
class BlockLocation:
    """A (file offset range -> hosts) mapping returned to clients."""

    offset: int
    length: int
    hosts: List[str]


@dataclass
class FileStatus:
    """Metadata returned by :meth:`HdfsClient.file_status`."""

    path: str
    length: int
    block_count: int
    replication: int


@dataclass
class _INode:
    path: str
    blocks: List[BlockInfo] = field(default_factory=list)
    lease_holder: Optional[str] = None

    @property
    def length(self) -> int:
        return sum(b.length for b in self.blocks)


class Hdfs:
    """The file system: one NameNode namespace plus its DataNodes."""

    def __init__(self, block_size: int = 64 * 1024, replication: int = 3, seed: int = 0):
        if block_size < 16:
            raise ValueError("block_size too small")
        self.block_size = block_size
        self.replication = replication
        self._inodes: Dict[str, _INode] = {}
        #: Per-path mutation counter consumed by the block decode cache.
        #: Bumped only when previously written bytes can change or vanish
        #: (truncate, delete, rename) — appends never rewrite old offsets,
        #: so they leave the epoch alone and cached prefixes stay valid.
        self._write_epochs: Dict[str, int] = {}
        self._datanodes: Dict[str, DataNode] = {}
        self._block_ids = itertools.count(1)
        self._rng = DeterministicRng(seed, "hdfs")

    # ------------------------------------------------------------- topology
    def add_datanode(self, host: str, num_disks: int = 12) -> DataNode:
        if host in self._datanodes:
            raise HdfsError(f"DataNode already registered: {host}")
        node = DataNode(host, num_disks=num_disks)
        self._datanodes[host] = node
        return node

    @property
    def datanodes(self) -> Dict[str, DataNode]:
        return dict(self._datanodes)

    def client(self, host: str = "client") -> "HdfsClient":
        """Create a client; reads/writes prefer a DataNode on ``host``."""
        return HdfsClient(self, host)

    # ------------------------------------------------------------ namespace
    def exists(self, path: str) -> bool:
        return path in self._inodes

    def list_status(self, prefix: str = "") -> List[FileStatus]:
        """List files whose path starts with ``prefix``, sorted by path."""
        return [
            self._status(inode)
            for path, inode in sorted(self._inodes.items())
            if path.startswith(prefix)
        ]

    def delete(self, path: str) -> None:
        inode = self._inode(path)
        for block in inode.blocks:
            for host in block.hosts:
                self._datanodes[host].drop_block(block.block_id)
        del self._inodes[path]
        self.bump_write_epoch(path)

    def rename(self, src: str, dst: str) -> None:
        if dst in self._inodes:
            raise FileAlreadyExists(dst)
        self._inodes[dst] = self._inodes.pop(src)
        self._inodes[dst].path = dst
        self.bump_write_epoch(src)
        self.bump_write_epoch(dst)

    def write_epoch(self, path: str) -> int:
        """Mutation counter for ``path`` (cache-invalidation token)."""
        return self._write_epochs.get(path, 0)

    def bump_write_epoch(self, path: str) -> None:
        self._write_epochs[path] = self._write_epochs.get(path, 0) + 1

    def block_locations(self, path: str) -> List[BlockLocation]:
        inode = self._inode(path)
        locations = []
        offset = 0
        for block in inode.blocks:
            hosts = [
                h for h in block.hosts if self._datanodes[h].has_block(block.block_id)
            ]
            locations.append(BlockLocation(offset, block.length, hosts))
            offset += block.length
        return locations

    def _status(self, inode: _INode) -> FileStatus:
        return FileStatus(
            path=inode.path,
            length=inode.length,
            block_count=len(inode.blocks),
            replication=self.replication,
        )

    def _inode(self, path: str) -> _INode:
        inode = self._inodes.get(path)
        if inode is None:
            raise FileNotFoundInHdfs(path)
        return inode

    # --------------------------------------------------------------- leases
    def _acquire_lease(self, path: str, holder: str) -> _INode:
        inode = self._inode(path)
        if inode.lease_holder is not None and inode.lease_holder != holder:
            raise LeaseConflict(
                f"{path}: lease held by {inode.lease_holder}, wanted by {holder}"
            )
        inode.lease_holder = holder
        return inode

    def _release_lease(self, path: str, holder: str) -> None:
        inode = self._inode(path)
        if inode.lease_holder == holder:
            inode.lease_holder = None

    # ----------------------------------------------------------- replication
    def _choose_hosts(self, preferred: str) -> List[str]:
        alive = [h for h, n in self._datanodes.items() if n.alive and n.healthy_disks]
        if len(alive) == 0:
            raise ReplicationError("no live DataNodes")
        count = min(self.replication, len(alive))
        chosen: List[str] = []
        if preferred in alive:
            chosen.append(preferred)
        remaining = [h for h in alive if h not in chosen]
        self._rng.shuffle(remaining)
        chosen.extend(remaining[: count - len(chosen)])
        return chosen

    def fail_datanode(self, host: str) -> None:
        """Kill a DataNode; surviving replicas keep files readable."""
        self._datanodes[host].alive = False

    def restore_datanode(self, host: str) -> None:
        self._datanodes[host].alive = True

    def fail_disk(self, host: str, disk_index: int) -> List[int]:
        """Fail one disk on a DataNode and process its block-report delta.

        The DataNode reports which replicas the dead volume held; the
        NameNode removes this host from those blocks' location lists so
        the blocks become *detectably* under-replicated (and
        :meth:`check_replication` can heal them). Returns the lost
        block ids.
        """
        lost = self._datanodes[host].fail_disk(disk_index)
        self.report_lost_replicas(host, lost)
        return lost

    def report_lost_replicas(self, host: str, block_ids: Sequence[int]) -> int:
        """Block-report delta: drop location entries for lost replicas.

        Only replicas the DataNode can no longer serve are dropped — a
        block id whose replica survives on another healthy disk of the
        same node keeps its entry. Returns locations removed.
        """
        wanted = set(block_ids)
        node = self._datanodes[host]
        removed = 0
        for inode in self._inodes.values():
            for block in inode.blocks:
                if (
                    block.block_id in wanted
                    and host in block.hosts
                    and not node.has_block(block.block_id)
                ):
                    block.hosts.remove(host)
                    removed += 1
        return removed

    def under_replicated(self) -> List[int]:
        """Block ids with fewer live replicas than the achievable factor.

        The achievable factor is ``min(replication, usable hosts)`` so a
        shrunken cluster is not reported as permanently degraded.
        """
        target = min(self.replication, max(len(self._usable_hosts()), 1))
        out: List[int] = []
        for inode in self._inodes.values():
            for block in inode.blocks:
                live = [
                    h
                    for h in block.hosts
                    if self._datanodes[h].alive
                    and self._datanodes[h].has_block(block.block_id)
                ]
                if len(live) < target:
                    out.append(block.block_id)
        return out

    def check_replication(self) -> int:
        """Re-replicate under-replicated blocks; returns replicas created.

        This is the NameNode background job that masks disk and node
        failures from readers.
        """
        created = 0
        for inode in self._inodes.values():
            for block in inode.blocks:
                live = [
                    h
                    for h in block.hosts
                    if self._datanodes[h].alive
                    and self._datanodes[h].has_block(block.block_id)
                ]
                if not live:
                    continue  # data loss: nothing to copy from
                missing = min(self.replication, len(self._usable_hosts())) - len(live)
                if missing <= 0:
                    block.hosts = live
                    continue
                data = self._datanodes[live[0]].read_block(block.block_id)
                candidates = [h for h in self._usable_hosts() if h not in live]
                self._rng.shuffle(candidates)
                for host in candidates[:missing]:
                    self._datanodes[host].store_block(block.block_id, data)
                    live.append(host)
                    created += 1
                block.hosts = live
        return created

    def _usable_hosts(self) -> List[str]:
        return [
            h for h, n in self._datanodes.items() if n.alive and n.healthy_disks
        ]

    # ----------------------------------------------------- internal file ops
    def _create(self, path: str, holder: str) -> _INode:
        if path in self._inodes:
            raise FileAlreadyExists(path)
        inode = _INode(path=path, lease_holder=holder)
        self._inodes[path] = inode
        return inode

    def _append_block(self, inode: _INode, data: bytes, preferred: str) -> None:
        hosts = self._choose_hosts(preferred)
        block = BlockInfo(next(self._block_ids), len(data), hosts)
        for host in hosts:
            self._datanodes[host].store_block(block.block_id, data)
        inode.blocks.append(block)

    def _read_block(self, block: BlockInfo, preferred: str) -> bytes:
        hosts = list(block.hosts)
        if preferred in hosts:
            hosts.remove(preferred)
            hosts.insert(0, preferred)
        last_error: Optional[Exception] = None
        for host in hosts:
            node = self._datanodes[host]
            if not node.alive:
                continue
            try:
                return node.read_block(block.block_id)
            except HdfsError as exc:
                last_error = exc
        raise HdfsError(
            f"block {block.block_id} unreadable on all replicas"
        ) from last_error


class HdfsClient:
    """Client-side API (the ``libhdfs3`` analogue used by segments)."""

    def __init__(self, fs: Hdfs, host: str):
        self.fs = fs
        self.host = host
        #: Bytes served from a non-local replica since creation; the
        #: executor samples this to charge network time for remote reads.
        self.remote_bytes_read = 0
        self.local_bytes_read = 0

    # --------------------------------------------------------------- writes
    def create(self, path: str) -> "HdfsWriter":
        inode = self.fs._create(path, holder=self.host)
        return HdfsWriter(self, inode)

    def append(self, path: str) -> "HdfsWriter":
        inode = self.fs._acquire_lease(path, holder=self.host)
        return HdfsWriter(self, inode)

    def write_file(self, path: str, data: bytes) -> None:
        """Create ``path`` and write ``data`` in one call."""
        writer = self.create(path)
        writer.write(data)
        writer.close()

    # ---------------------------------------------------------------- reads
    def open(self, path: str) -> "HdfsReader":
        return HdfsReader(self, self.fs._inode(path))

    def read_file(self, path: str, length: Optional[int] = None) -> bytes:
        """Read the whole file (or its first ``length`` bytes)."""
        reader = self.open(path)
        return reader.read_all() if length is None else reader.read(length)

    def file_status(self, path: str) -> FileStatus:
        return self.fs._status(self.fs._inode(path))

    def exists(self, path: str) -> bool:
        return self.fs.exists(path)

    def delete(self, path: str) -> None:
        self.fs.delete(path)

    def write_epoch(self, path: str) -> int:
        """See :meth:`Hdfs.write_epoch`."""
        return self.fs.write_epoch(path)

    # ------------------------------------------------------------- truncate
    def truncate(self, path: str, length: int) -> None:
        """Truncate ``path`` to exactly ``length`` bytes (paper 5.3).

        Raises :class:`TruncateError` if ``length`` exceeds the current
        file length (HDFS cannot extend by overwrite). Atomic: the file is
        never observable in an intermediate state because the block list
        is swapped in one step.
        """
        inode = self.fs._acquire_lease(path, holder=self.host)
        try:
            if length > inode.length:
                raise TruncateError(
                    f"cannot truncate {path} to {length} > file length {inode.length}"
                )
            if length == inode.length:
                return
            # Bytes beyond ``length`` are about to disappear (and may be
            # re-appended with different content): invalidate cached
            # decodes of this file.
            self.fs.bump_write_epoch(path)
            kept: List[BlockInfo] = []
            consumed = 0
            partial: Optional[BlockInfo] = None
            for block in inode.blocks:
                if consumed + block.length <= length:
                    kept.append(block)
                    consumed += block.length
                elif consumed < length:
                    partial = block
                    break
                else:
                    break
            dropped = [
                b for b in inode.blocks if b not in kept and b is not partial
            ]
            if partial is not None:
                # Not at a block boundary: copy the surviving prefix of the
                # partial block (the temporary-file dance from the paper),
                # then splice it back in place of the original block.
                data = self.fs._read_block(partial, preferred=self.host)
                tail = data[: length - consumed]
                new_hosts = [
                    h
                    for h in partial.hosts
                    if self.fs._datanodes[h].has_block(partial.block_id)
                ]
                for host in new_hosts:
                    self.fs._datanodes[host].replace_block(partial.block_id, tail)
                partial.length = len(tail)
                kept.append(partial)
            for block in dropped:
                for host in block.hosts:
                    self.fs._datanodes[host].drop_block(block.block_id)
            inode.blocks = kept
        finally:
            self.fs._release_lease(path, holder=self.host)


class HdfsWriter:
    """Streaming writer holding the file lease until closed."""

    def __init__(self, client: HdfsClient, inode: _INode):
        self._client = client
        self._inode = inode
        self._buffer = bytearray()
        self._closed = False

    def write(self, data: bytes) -> None:
        if self._closed:
            raise HdfsError("writer is closed")
        self._buffer.extend(data)
        while len(self._buffer) >= self._client.fs.block_size:
            chunk = bytes(self._buffer[: self._client.fs.block_size])
            del self._buffer[: self._client.fs.block_size]
            self._client.fs._append_block(self._inode, chunk, self._client.host)

    def close(self) -> None:
        if self._closed:
            return
        if self._buffer:
            self._client.fs._append_block(
                self._inode, bytes(self._buffer), self._client.host
            )
            self._buffer.clear()
        self._client.fs._release_lease(self._inode.path, self._client.host)
        self._closed = True

    def __enter__(self) -> "HdfsWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class HdfsReader:
    """Positioned reader that prefers local replicas."""

    def __init__(self, client: HdfsClient, inode: _INode):
        self._client = client
        self._inode = inode
        self._position = 0

    @property
    def length(self) -> int:
        return self._inode.length

    def seek(self, position: int) -> None:
        if position < 0 or position > self._inode.length:
            raise HdfsError(f"seek out of range: {position}")
        self._position = position

    def read(self, length: int) -> bytes:
        """Read up to ``length`` bytes from the current position."""
        out = bytearray()
        offset = 0
        for block in self._inode.blocks:
            block_end = offset + block.length
            if block_end <= self._position:
                offset = block_end
                continue
            if offset >= self._position + length:
                break
            data = self._client.fs._read_block(block, preferred=self._client.host)
            start = max(0, self._position - offset)
            stop = min(block.length, self._position + length - offset)
            out.extend(data[start:stop])
            if self._client.host in block.hosts:
                self._client.local_bytes_read += stop - start
            else:
                self._client.remote_bytes_read += stop - start
            offset = block_end
        self._position += len(out)
        return bytes(out)

    def read_all(self) -> bytes:
        return self.read(self._inode.length - self._position)
