"""Import-resolved interprocedural call graph for rules R3 and R7.

Two consumers with opposite precision needs share this graph:

* **R3 cost-conformance** asks "can this byte-moving function execute
  inside a charging context?"  Over-approximation errs toward silence
  (more edges → more coverage → fewer findings), which is the right
  polarity for that rule, so its :meth:`CallGraph.coverage` closure
  walks the *resolved* edges **plus** the name-based fuzzy fallback.
* **R7 cross-query-isolation** asks "is this shared-state write
  reachable from the concurrent entry points?"  There over-approximation
  errs toward *noise* (a fuzzy edge through a common method name like
  ``run`` or ``send`` would drag half the repo into the reachable set),
  so its :meth:`CallGraph.reachable_from` closure walks resolved edges
  only.

Resolution (the PR-8 upgrade — the old graph matched bare function
names project-wide, which both missed aliased imports and conflated
same-named methods of unrelated classes):

* modules are qualified: ``src/repro/executor/batch.py`` is
  ``repro.executor.batch``; every file's import table maps local
  aliases to fully-qualified targets (``from x import y as z``,
  ``import x.y as z``, relative imports);
* ``f(...)`` resolves through the lexical scope chain — enclosing
  function qualnames, then module-level defs, then the import table;
* ``x.m(...)`` resolves the receiver: module aliases, ``self``/``cls``
  (the enclosing class and its resolved bases), names whose class is
  known from a parameter/variable annotation or a ``x = Cls(...)``
  constructor assignment, and instance attributes whose type was
  inferred from ``self.attr = <typed thing>`` assignments or dataclass
  field annotations;
* ``Cls(...)`` adds an edge to ``Cls.__init__`` and types the result;
* bare references (callbacks) resolve like calls;
* anything else falls back to the fuzzy name-match edge set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: Attribute names of the :class:`repro.simtime.CostAccumulator` charging
#: API. A call to any of these (on any receiver) marks the function as a
#: charger.
CHARGE_METHODS = frozenset(
    {"disk_read", "disk_write", "network", "cpu_bytes", "cpu_tuples", "fixed"}
)

#: Functions that charge simulated time through a mechanism the
#: attribute-name heuristic cannot see. ``SimNetwork.send`` bills every
#: datagram's serialization delay (size / bandwidth) plus latency on the
#: event clock itself.
EXTRA_CHARGERS = frozenset({"src/repro/network/simnet.py::SimNetwork.send"})


def module_name(path: str) -> str:
    """``src/repro/executor/batch.py`` → ``repro.executor.batch``."""
    parts = path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        last = parts[-1][:-3]
        parts = parts[:-1] if last == "__init__" else parts[:-1] + [last]
    return ".".join(parts)


@dataclass
class FunctionNode:
    """One function definition in the project."""

    key: str  # "<path>::<qualname>"
    path: str
    qualname: str  # e.g. "Hdfs.check_replication"
    name: str  # last path segment, the resolution name
    lineno: int
    charges: bool = False
    #: Bare names this function's body mentions (fuzzy-edge fallback).
    mentions: Set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    """One class definition: its methods and resolved base classes."""

    key: str  # "<path>::<qualname>"
    path: str
    qualname: str
    #: method name -> function key
    methods: Dict[str, str] = field(default_factory=dict)
    #: base-class expressions, resolved lazily to ClassInfo keys
    base_exprs: List[ast.expr] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)
    #: instance/class attribute name -> class key (inferred types)
    attr_types: Dict[str, str] = field(default_factory=dict)


class _Scope:
    """Lexical context while walking one file's AST."""

    def __init__(self, source, graph: "CallGraph"):
        self.source = source
        self.graph = graph
        #: enclosing function-qualname chain, innermost last
        self.func_chain: List[str] = []
        #: enclosing class-qualname chain, innermost last
        self.class_chain: List[str] = []
        #: local-name -> class key, per enclosing function (innermost last)
        self.local_types: List[Dict[str, str]] = []

    @property
    def owner_key(self) -> Optional[str]:
        if not self.func_chain:
            return None
        return f"{self.source.path}::{self.func_chain[-1]}"

    @property
    def class_key(self) -> Optional[str]:
        if not self.class_chain:
            return None
        return f"{self.source.path}::{self.class_chain[-1]}"


class CallGraph:
    """Project-wide call graph with resolved and fuzzy edge sets."""

    def __init__(self) -> None:
        self.nodes: Dict[str, FunctionNode] = {}
        self.by_name: Dict[str, List[str]] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: import tables: path -> {local alias: fully-qualified target}
        self.imports: Dict[str, Dict[str, str]] = {}
        #: module name -> path (for resolving qualified targets)
        self.modules: Dict[str, str] = {}
        #: resolved call/reference edges
        self.resolved: Dict[str, Set[str]] = {}
        #: fuzzy fallback edges (bare-name matching, R3 only)
        self.fuzzy: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------ build
    @classmethod
    def build(cls, project) -> "CallGraph":
        graph = cls()
        for source in project.files:
            graph.modules[module_name(source.path)] = source.path
        for source in project.files:
            graph._collect_defs(source)
            graph._collect_imports(source)
        graph._resolve_bases()
        for source in project.files:
            graph._infer_attr_types(source)
        for source in project.files:
            graph._collect_edges(source)
        return graph

    # ----------------------------------------------------------- definitions
    def _collect_defs(self, source) -> None:
        def visit(node: ast.AST, qual: str, cls: Optional[ClassInfo]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    inner = child.name if not qual else f"{qual}.{child.name}"
                    key = f"{source.path}::{inner}"
                    fn = FunctionNode(
                        key=key,
                        path=source.path,
                        qualname=inner,
                        name=child.name,
                        lineno=child.lineno,
                    )
                    self.nodes[key] = fn
                    self.resolved[key] = set()
                    self.fuzzy[key] = set()
                    self.by_name.setdefault(child.name, []).append(key)
                    if cls is not None and qual == cls.qualname:
                        cls.methods[child.name] = key
                    visit(child, inner, None)
                elif isinstance(child, ast.ClassDef):
                    inner = child.name if not qual else f"{qual}.{child.name}"
                    info = ClassInfo(
                        key=f"{source.path}::{inner}",
                        path=source.path,
                        qualname=inner,
                        base_exprs=list(child.bases),
                    )
                    self.classes[info.key] = info
                    visit(child, inner, info)
                else:
                    visit(child, qual, cls)

        visit(source.tree, "", None)

    # --------------------------------------------------------------- imports
    def _collect_imports(self, source) -> None:
        table: Dict[str, str] = {}
        package = module_name(source.path).rsplit(".", 1)[0]
        if source.path.endswith("__init__.py"):
            package = module_name(source.path)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    table[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    parts = package.split(".")
                    if node.level > 1:
                        parts = parts[: len(parts) - (node.level - 1)]
                    base = ".".join(parts)
                    mod = f"{base}.{node.module}" if node.module else base
                else:
                    mod = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = f"{mod}.{alias.name}"
        self.imports[source.path] = table

    def _lookup_qualified(self, target: str) -> Optional[str]:
        """Resolve a fully-qualified name to a function or class key.

        ``repro.storage.registry.get_format`` → its node key;
        ``repro.cluster.rpc.RpcBus`` → its class key. Handles one level
        of re-export through a package ``__init__``.
        """
        for split in range(target.count(".") + 1, 0, -1):
            parts = target.split(".")
            mod, rest = ".".join(parts[:split]), parts[split:]
            path = self.modules.get(mod)
            if path is None:
                continue
            if not rest:
                return None  # a module itself, not a def
            qual = ".".join(rest)
            key = f"{path}::{qual}"
            if key in self.nodes or key in self.classes:
                return key
            # Re-export: from repro.lint import load_project resolves
            # through the package __init__'s own import table.
            inner = self.imports.get(path, {}).get(rest[0])
            if inner is not None:
                return self._lookup_qualified(".".join([inner] + rest[1:]))
            return None
        return None

    # ----------------------------------------------------------------- bases
    def _resolve_bases(self) -> None:
        for info in self.classes.values():
            for base in info.base_exprs:
                resolved = self._resolve_class_expr(base, info.path)
                if resolved is not None:
                    info.bases.append(resolved)

    def _resolve_class_expr(self, node: ast.expr, path: str) -> Optional[str]:
        """Resolve an expression naming a class to its ClassInfo key."""
        if isinstance(node, ast.Subscript):  # Generic[...] bases
            node = node.value
        dotted = self._dotted_name(node)
        if dotted is None:
            return None
        return self._resolve_dotted_class(dotted, path)

    @staticmethod
    def _dotted_name(node: ast.expr) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    def _resolve_dotted_class(self, dotted: str, path: str) -> Optional[str]:
        head, _, rest = dotted.partition(".")
        # Same-module class (including nested via its qualname)?
        key = f"{path}::{dotted}"
        if key in self.classes:
            return key
        target = self.imports.get(path, {}).get(head)
        if target is not None:
            full = f"{target}.{rest}" if rest else target
            resolved = self._lookup_qualified(full)
            if resolved in self.classes:
                return resolved
        return None

    # ------------------------------------------------------- attribute types
    def _infer_attr_types(self, source) -> None:
        """Fill each class's ``attr_types`` from dataclass-style field
        annotations and ``self.attr = <typed>`` assignments."""

        def class_of_annotation(annotation: Optional[ast.expr]) -> Optional[str]:
            if annotation is None:
                return None
            node = annotation
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                try:
                    node = ast.parse(node.value, mode="eval").body
                except SyntaxError:
                    return None
            if isinstance(node, ast.Subscript):
                # Optional[T] / List[T]: too ambiguous, skip.
                return None
            return self._resolve_class_expr(node, source.path)

        def visit_class(cdef: ast.ClassDef, qual: str) -> None:
            info = self.classes[f"{source.path}::{qual}"]
            for stmt in cdef.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    cls_key = class_of_annotation(stmt.annotation)
                    if cls_key is not None:
                        info.attr_types[stmt.target.id] = cls_key
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    params = {}
                    args = stmt.args
                    for arg in (
                        list(args.posonlyargs)
                        + list(args.args)
                        + list(args.kwonlyargs)
                    ):
                        cls_key = class_of_annotation(arg.annotation)
                        if cls_key is not None:
                            params[arg.arg] = cls_key
                    for node in ast.walk(stmt):
                        value_cls: Optional[str] = None
                        target: Optional[ast.expr] = None
                        if isinstance(node, ast.Assign) and len(node.targets) == 1:
                            target, value = node.targets[0], node.value
                            if isinstance(value, ast.Name):
                                value_cls = params.get(value.id)
                            elif isinstance(value, ast.Call):
                                value_cls = self._constructed_class(
                                    value, source.path
                                )
                        elif isinstance(node, ast.AnnAssign):
                            target = node.target
                            value_cls = class_of_annotation(node.annotation)
                        if (
                            value_cls is not None
                            and isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            info.attr_types.setdefault(target.attr, value_cls)

        def walk(node: ast.AST, qual: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    inner = child.name if not qual else f"{qual}.{child.name}"
                    visit_class(child, inner)
                    walk(child, inner)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk(child, qual + "." + child.name if qual else child.name)
                else:
                    walk(child, qual)

        walk(source.tree, "")

    def _constructed_class(self, call: ast.Call, path: str) -> Optional[str]:
        dotted = self._dotted_name(call.func)
        if dotted is None:
            return None
        return self._resolve_dotted_class(dotted, path)

    # ----------------------------------------------------------------- edges
    def _collect_edges(self, source) -> None:
        scope = _Scope(source, self)

        def add_resolved(owner: Optional[str], target: Optional[str]) -> None:
            if owner is None or target is None:
                return
            if target in self.classes:
                init = self.classes[target].methods.get("__init__")
                target = init
                if target is None:
                    return
            if target in self.nodes and target != owner:
                self.resolved[owner].add(target)

        def resolve_bare(name: str) -> Optional[str]:
            # Lexical chain: nested defs of this function and enclosing
            # ones (a closure returned/called by name resolves here).
            for qual in reversed(scope.func_chain):
                key = f"{source.path}::{qual}.{name}"
                if key in self.nodes:
                    return key
            # Module level def or class.
            for key in (f"{source.path}::{name}",):
                if key in self.nodes or key in self.classes:
                    return key
            target = self.imports[source.path].get(name)
            if target is not None:
                return self._lookup_qualified(target)
            return None

        def method_on(cls_key: Optional[str], name: str) -> Optional[str]:
            seen = set()
            while cls_key is not None and cls_key not in seen:
                seen.add(cls_key)
                info = self.classes.get(cls_key)
                if info is None:
                    return None
                if name in info.methods:
                    return info.methods[name]
                cls_key = info.bases[0] if info.bases else None
            return None

        def receiver_class(node: ast.expr) -> Optional[str]:
            """Class key of the value ``node`` evaluates to, if known."""
            if isinstance(node, ast.Name):
                if node.id in ("self", "cls") and scope.class_chain:
                    return scope.class_key
                for frame in reversed(scope.local_types):
                    if node.id in frame:
                        return frame[node.id]
                resolved = resolve_bare(node.id)
                if resolved in self.classes:
                    return resolved  # ClassName.method(...) static-style
                return None
            if isinstance(node, ast.Attribute):
                # self.attr → the enclosing class's inferred field type.
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in ("self", "cls")
                    and scope.class_key is not None
                ):
                    info = self.classes.get(scope.class_key)
                    seen = set()
                    while info is not None and info.key not in seen:
                        seen.add(info.key)
                        if node.attr in info.attr_types:
                            return info.attr_types[node.attr]
                        info = (
                            self.classes.get(info.bases[0])
                            if info.bases
                            else None
                        )
                    return None
                # x.attr where x is a known local of a known class.
                base = receiver_class(node.value)
                if base is not None:
                    info = self.classes.get(base)
                    if info is not None and node.attr in info.attr_types:
                        return info.attr_types[node.attr]
            if isinstance(node, ast.Call):
                return self._constructed_class(node, source.path)
            return None

        def resolve_attribute(node: ast.Attribute) -> Optional[str]:
            """Resolve ``<expr>.name`` to a function key, or None."""
            dotted = self._dotted_name(node)
            if dotted is not None:
                head = dotted.split(".", 1)[0]
                target = self.imports[source.path].get(head)
                if target is not None and head not in (
                    "self",
                    "cls",
                ):
                    full = dotted.replace(head, target, 1)
                    found = self._lookup_qualified(full)
                    if found is not None:
                        return found
            if isinstance(node.value, ast.Name) and node.value.id in (
                "self",
                "cls",
            ):
                found = method_on(scope.class_key, node.attr)
                if found is not None:
                    return found
            cls_key = receiver_class(node.value)
            if cls_key is not None:
                return method_on(cls_key, node.attr)
            return None

        def note_local_type(node: ast.AST) -> None:
            if not scope.local_types:
                return
            frame = scope.local_types[-1]
            target: Optional[ast.expr] = None
            value_cls: Optional[str] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(node.value, ast.Call):
                    value_cls = self._constructed_class(node.value, source.path)
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                ann = node.annotation
                if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                    try:
                        ann = ast.parse(ann.value, mode="eval").body
                    except SyntaxError:
                        ann = None
                if ann is not None and not isinstance(ann, ast.Subscript):
                    value_cls = self._resolve_class_expr(ann, source.path)
            if (
                value_cls is not None
                and isinstance(target, ast.Name)
            ):
                frame[target.id] = value_cls

        def annotate_params(fdef) -> Dict[str, str]:
            frame: Dict[str, str] = {}
            args = fdef.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if arg.annotation is None:
                    continue
                ann = arg.annotation
                if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                    try:
                        ann = ast.parse(ann.value, mode="eval").body
                    except SyntaxError:
                        continue
                if isinstance(ann, ast.Subscript):
                    continue
                cls_key = self._resolve_class_expr(ann, source.path)
                if cls_key is not None:
                    frame[arg.arg] = cls_key
            return frame

        def scan_body(node: ast.AST) -> None:
            owner = scope.owner_key
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    name = child.name
                    qual = (
                        f"{scope.func_chain[-1]}.{name}"
                        if scope.func_chain
                        else (
                            f"{scope.class_chain[-1]}.{name}"
                            if scope.class_chain
                            else name
                        )
                    )
                    scope.func_chain.append(qual)
                    scope.local_types.append(annotate_params(child))
                    scan_body(child)
                    scope.local_types.pop()
                    scope.func_chain.pop()
                    continue
                if isinstance(child, ast.ClassDef):
                    inner = (
                        f"{scope.class_chain[-1]}.{child.name}"
                        if scope.class_chain
                        else child.name
                    )
                    scope.class_chain.append(inner)
                    scan_body(child)
                    scope.class_chain.pop()
                    continue
                if owner is not None:
                    note_local_type(child)
                    if isinstance(child, ast.Call):
                        fnode = self.nodes[owner]
                        func = child.func
                        if (
                            isinstance(func, ast.Attribute)
                            and func.attr in CHARGE_METHODS
                        ):
                            fnode.charges = True
                        if isinstance(func, ast.Name):
                            add_resolved(owner, resolve_bare(func.id))
                        elif isinstance(func, ast.Attribute):
                            found = resolve_attribute(func)
                            if found is not None:
                                add_resolved(owner, found)
                            else:
                                fnode.mentions.add(func.attr)
                    elif isinstance(child, ast.Attribute):
                        found = resolve_attribute(child)
                        if found is not None:
                            add_resolved(owner, found)
                        else:
                            self.nodes[owner].mentions.add(child.attr)
                    elif isinstance(child, ast.Name):
                        found = resolve_bare(child.id)
                        if found is not None:
                            add_resolved(owner, found)
                        else:
                            self.nodes[owner].mentions.add(child.id)
                scan_body(child)

        scan_body(source.tree)
        # Fuzzy fallback: unresolved mentions match every same-named def.
        for key, fnode in self.nodes.items():
            if fnode.path != source.path:
                continue
            for name in fnode.mentions:
                for target in self.by_name.get(name, ()):
                    if target != key:
                        self.fuzzy[key].add(target)

    # ------------------------------------------------------------- traversal
    def callees(self, key: str, include_fuzzy: bool = True) -> Set[str]:
        out = set(self.resolved.get(key, ()))
        if include_fuzzy:
            out |= self.fuzzy.get(key, ())
        return out

    def reachable_from(
        self, roots: Set[str], include_fuzzy: bool = False
    ) -> Set[str]:
        """Forward closure from ``roots`` (resolved edges by default)."""
        seen = set(k for k in roots if k in self.nodes)
        stack = list(seen)
        while stack:
            current = stack.pop()
            for nxt in self.callees(current, include_fuzzy=include_fuzzy):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def functions_in(self, *path_suffixes: str) -> Set[str]:
        """Keys of every function defined in files matching a suffix."""
        return {
            key
            for key, node in self.nodes.items()
            if any(node.path.endswith(sfx) for sfx in path_suffixes)
        }

    # --------------------------------------------------------------- coverage
    def coverage(self) -> Set[str]:
        """Keys of all functions covered by a charging context (R3).

        * ``CHARGERS`` — functions whose own body calls the charging API,
          plus configured self-charging primitives.
        * ``UP``   — functions from which some charger is reachable along
          call edges (they charge at-or-below their own frame).
        * ``DOWN`` — functions reachable from ``CHARGERS | UP`` (they
          execute inside the dynamic extent of a frame that charges).
        * ``COVERED = CHARGERS | UP | DOWN``.

        Uses resolved **and** fuzzy edges: over-approximation errs
        toward silence, the right polarity for cost-conformance.
        """
        chargers = {
            key
            for key, node in self.nodes.items()
            if node.charges or key in EXTRA_CHARGERS
        }
        forward: Dict[str, Set[str]] = {
            key: self.callees(key) for key in self.nodes
        }
        reverse: Dict[str, Set[str]] = {key: set() for key in self.nodes}
        for src, dsts in forward.items():
            for dst in dsts:
                reverse[dst].add(src)

        def closure(seed: Set[str], adj: Dict[str, Set[str]]) -> Set[str]:
            seen = set(seed)
            stack = list(seed)
            while stack:
                current = stack.pop()
                for nxt in adj.get(current, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return seen

        up = closure(chargers, reverse)  # callers that reach a charger
        down = closure(up, forward)  # everything a charging extent runs
        return up | down
