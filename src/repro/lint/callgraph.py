"""Name-resolved call graph + cost-coverage analysis for rule R3.

The cost-conformance rule needs to know, for every function that moves
payload bytes, whether those bytes can be charged to the simulated clock
*somewhere* in its dynamic extent — in the function itself, in a caller
above it (the engine charges ``acc.disk_read`` for a whole storage
scan), or in a callee below it (``SimNetwork.send`` converts datagram
size into serialization delay on the event clock).

Exact static call resolution is impossible in Python (scan functions are
passed as callbacks, formats are looked up from a registry), so the
graph over-approximates: an edge ``F -> G`` exists whenever F's body
*mentions* a name that matches G's function name — as a call, an
attribute access, or a bare reference (callbacks!).  Over-approximation
errs toward silence, which is the right polarity for a lint: a
byte-moving function is flagged only when **no** charging context
anywhere in the project can plausibly reach it.

Definitions (see :func:`coverage`):

* ``CHARGERS`` — functions whose own body calls the charging API
  (``CostAccumulator.disk_read/disk_write/network/cpu_bytes/cpu_tuples/
  fixed``), plus configured self-charging primitives.
* ``UP``   — functions from which some charger is reachable along call
  edges (they charge at-or-below their own frame).
* ``DOWN`` — functions reachable from ``CHARGERS | UP`` (they execute
  inside the dynamic extent of a frame that charges).
* ``COVERED = CHARGERS | UP | DOWN``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Set

#: Attribute names of the :class:`repro.simtime.CostAccumulator` charging
#: API. A call to any of these (on any receiver) marks the function as a
#: charger.
CHARGE_METHODS = frozenset(
    {"disk_read", "disk_write", "network", "cpu_bytes", "cpu_tuples", "fixed"}
)

#: Functions that charge simulated time through a mechanism the
#: attribute-name heuristic cannot see. ``SimNetwork.send`` bills every
#: datagram's serialization delay (size / bandwidth) plus latency on the
#: event clock itself.
EXTRA_CHARGERS = frozenset({"src/repro/network/simnet.py::SimNetwork.send"})


@dataclass
class FunctionNode:
    """One function definition in the project."""

    key: str  # "<path>::<qualname>"
    path: str
    qualname: str  # e.g. "Hdfs.check_replication"
    name: str  # last path segment, the resolution name
    lineno: int
    charges: bool = False
    #: Names (function names) this function's body mentions.
    mentions: Set[str] = field(default_factory=set)


class CallGraph:
    """Project-wide over-approximated call graph."""

    def __init__(self) -> None:
        self.nodes: Dict[str, FunctionNode] = {}
        self.by_name: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ build
    @classmethod
    def build(cls, project) -> "CallGraph":
        graph = cls()
        for source in project.files:
            graph._collect_defs(source)
        for source in project.files:
            graph._collect_mentions(source)
        return graph

    def _collect_defs(self, source) -> None:
        def visit(node: ast.AST, qual: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    inner = child.name if not qual else f"{qual}.{child.name}"
                    key = f"{source.path}::{inner}"
                    fn = FunctionNode(
                        key=key,
                        path=source.path,
                        qualname=inner,
                        name=child.name,
                        lineno=child.lineno,
                    )
                    self.nodes[key] = fn
                    self.by_name.setdefault(child.name, []).append(key)
                    visit(child, inner)
                elif isinstance(child, ast.ClassDef):
                    inner = child.name if not qual else f"{qual}.{child.name}"
                    visit(child, inner)
                else:
                    visit(child, qual)

        visit(source.tree, "")

    def _collect_mentions(self, source) -> None:
        """Fill ``mentions`` and ``charges`` for every function in ``source``.

        A node's mentions are attributed to its innermost enclosing
        function (nested defs own their own bodies)."""

        def scan(body_owner_key: str, node: ast.AST) -> None:
            owner = self.nodes.get(body_owner_key)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # handled when iterating defs below
                if owner is not None:
                    if isinstance(child, ast.Attribute):
                        owner.mentions.add(child.attr)
                    elif isinstance(child, ast.Name):
                        owner.mentions.add(child.id)
                    if (
                        isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Attribute)
                        and child.func.attr in CHARGE_METHODS
                    ):
                        owner.charges = True
                scan(body_owner_key, child)

        def walk_defs(node: ast.AST, qual: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    inner = child.name if not qual else f"{qual}.{child.name}"
                    scan(f"{source.path}::{inner}", child)
                    walk_defs(child, inner)
                elif isinstance(child, ast.ClassDef):
                    walk_defs(child, child.name if not qual else f"{qual}.{child.name}")
                else:
                    walk_defs(child, qual)

        walk_defs(source.tree, "")

    # ------------------------------------------------------------------ edges
    def callees(self, key: str) -> Set[str]:
        out: Set[str] = set()
        node = self.nodes[key]
        for name in node.mentions:
            for target in self.by_name.get(name, ()):
                if target != key:
                    out.add(target)
        return out

    # --------------------------------------------------------------- coverage
    def coverage(self) -> Set[str]:
        """Keys of all functions covered by a charging context."""
        chargers = {
            key
            for key, node in self.nodes.items()
            if node.charges or key in EXTRA_CHARGERS
        }

        # Forward adjacency + its reverse, materialized once.
        forward: Dict[str, Set[str]] = {key: self.callees(key) for key in self.nodes}
        reverse: Dict[str, Set[str]] = {key: set() for key in self.nodes}
        for src, dsts in forward.items():
            for dst in dsts:
                reverse[dst].add(src)

        def closure(seed: Set[str], adj: Dict[str, Set[str]]) -> Set[str]:
            seen = set(seed)
            stack = list(seed)
            while stack:
                current = stack.pop()
                for nxt in adj.get(current, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return seen

        up = closure(chargers, reverse)  # callers that reach a charger
        down = closure(up, forward)  # everything a charging extent runs
        return up | down
