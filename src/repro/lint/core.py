"""Framework plumbing for the sanitizer: sources, findings, baseline.

The moving parts, in the order a run uses them:

* :func:`load_project` walks a source tree and parses every ``.py`` file
  into a :class:`SourceFile` (AST + per-line suppressions).
* :class:`Project` hands each registered rule the parsed files plus
  shared analyses (the cost-conformance call graph is built lazily and
  cached here so several rules could reuse it).
* Rules yield :class:`Finding`s; findings matching a per-line
  ``# lint: allow[RULE-ID]`` comment are dropped at collection time.
* :class:`Baseline` then filters grandfathered findings.  Baseline
  entries are keyed by ``(rule, path, enclosing function, source line
  text)`` — not line *numbers* — so unrelated edits to a file do not
  invalidate them, while any edit to the offending line itself does.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: ``# lint: allow[R1]`` / ``# lint: allow[R1, R4]`` / ``# lint: allow[*]``
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*allow\[([A-Za-z0-9_*,\s-]+)\]")


def repo_root() -> Path:
    """The repository root, derived from this package's location."""
    # src/repro/lint/core.py -> src/repro/lint -> src/repro -> src -> root
    return Path(__file__).resolve().parents[3]


def default_baseline_path() -> Path:
    """The committed baseline shipped next to the lint package."""
    return Path(__file__).resolve().parent / "baseline.json"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int
    message: str
    #: Qualified name of the enclosing function ("<module>" at top level).
    context: str = "<module>"
    #: The offending source line, stripped — the stable half of the
    #: baseline key.
    code: str = ""

    def key(self) -> Tuple[str, str, str, str]:
        return (self.rule, self.path, self.context, self.code)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "context": self.context,
            "code": self.code,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.context}] {self.message}"


class SourceFile:
    """One parsed module: AST, raw lines, suppressions, scope map."""

    def __init__(self, path: str, text: str):
        self.path = path  # repo-relative POSIX path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self.suppressions = self._scan_suppressions()
        self._scope_of: Dict[int, str] = {}
        self._index_scopes()

    # ------------------------------------------------------------ suppressions
    def _scan_suppressions(self) -> Dict[int, set]:
        out: Dict[int, set] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                out[lineno] = {r for r in rules if r}
        return out

    def is_suppressed(self, rule: str, lineno: int) -> bool:
        """True if ``lineno`` (or the line just above it, for own-line
        comments) carries an ``allow`` comment naming ``rule`` or ``*``."""
        for candidate in (lineno, lineno - 1):
            rules = self.suppressions.get(candidate)
            if rules and (rule in rules or "*" in rules):
                return True
        return False

    # ------------------------------------------------------------------ scopes
    def _index_scopes(self) -> None:
        """Map every AST node id to its innermost enclosing function."""

        def visit(node: ast.AST, scope: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    inner = child.name if scope == "<module>" else f"{scope}.{child.name}"
                    self._scope_of[id(child)] = scope
                    visit(child, inner)
                elif isinstance(child, ast.ClassDef):
                    inner = child.name if scope == "<module>" else f"{scope}.{child.name}"
                    self._scope_of[id(child)] = scope
                    visit(child, inner)
                else:
                    self._scope_of[id(child)] = scope
                    visit(child, scope)

        self._scope_of[id(self.tree)] = "<module>"
        visit(self.tree, "<module>")

    def scope_of(self, node: ast.AST) -> str:
        return self._scope_of.get(id(node), "<module>")

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=rule,
            path=self.path,
            line=lineno,
            message=message,
            context=self.scope_of(node),
            code=self.line_text(lineno),
        )


class Baseline:
    """Grandfathered findings, each with a human reason.

    The on-disk format is a sorted JSON list of entries::

        {"rule": "R3", "path": "src/repro/hdfs/filesystem.py",
         "context": "Hdfs.check_replication", "code": "data = ...",
         "reason": "NameNode background healing is off the query clock"}

    Matching consumes entries one-for-one, so two findings with the same
    key need two entries, and stale entries are reported by
    :meth:`unused`.
    """

    def __init__(self, entries: Optional[List[dict]] = None):
        self.entries = list(entries or [])
        self._pool: Dict[Tuple[str, str, str, str], int] = {}
        for entry in self.entries:
            self._pool[self._key(entry)] = self._pool.get(self._key(entry), 0) + 1
        self._matched: Dict[Tuple[str, str, str, str], int] = {}

    @staticmethod
    def _key(entry: dict) -> Tuple[str, str, str, str]:
        return (
            str(entry.get("rule", "")),
            str(entry.get("path", "")),
            str(entry.get("context", "")),
            str(entry.get("code", "")),
        )

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls([])
        data = json.loads(path.read_text())
        if not isinstance(data, list):
            raise ValueError(f"baseline {path} must contain a JSON list")
        return cls(data)

    def save(self, path: Path) -> None:
        ordered = sorted(
            self.entries,
            key=lambda e: (e.get("rule", ""), e.get("path", ""), e.get("code", "")),
        )
        path.write_text(json.dumps(ordered, indent=2, sort_keys=True) + "\n")

    def split(self, findings: Sequence[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, baselined)."""
        self._matched = {}
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            key = finding.key()
            if self._matched.get(key, 0) < self._pool.get(key, 0):
                self._matched[key] = self._matched.get(key, 0) + 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old

    def unused(self) -> List[dict]:
        """Entries no current finding matched (stale after the last split)."""
        out = []
        seen: Dict[Tuple[str, str, str, str], int] = {}
        for entry in self.entries:
            key = self._key(entry)
            seen[key] = seen.get(key, 0) + 1
            if seen[key] > self._matched.get(key, 0):
                out.append(entry)
        return out

    def drifted(self, findings: Sequence[Finding]) -> List[dict]:
        """Stale entries whose finding still exists under a *moved* context.

        A baseline entry keys on ``(rule, path, context, code)``; when the
        enclosing function is renamed (or code migrates between scopes)
        the entry silently stops matching and the finding resurfaces as
        "new" while the entry reads as merely stale. This pairs each
        stale entry with an unmatched current finding agreeing on
        ``(rule, path, code)`` but not on context, so the CLI can report
        the drift loudly — old context, new context — instead of two
        half-truths. Call after :meth:`split`.
        """
        stale = self.unused()
        if not stale:
            return []
        unmatched: Dict[Tuple[str, str, str], List[Finding]] = {}
        for finding in findings:
            # Exact-key findings were consumed by split(); only findings
            # whose (rule, path, context, code) is absent from the pool
            # can be a stale entry's moved twin.
            if finding.key() not in self._pool:
                loose = (finding.rule, finding.path, finding.code)
                unmatched.setdefault(loose, []).append(finding)
        drifts = []
        for entry in stale:
            loose = (
                str(entry.get("rule", "")),
                str(entry.get("path", "")),
                str(entry.get("code", "")),
            )
            candidates = unmatched.get(loose)
            if candidates:
                finding = candidates.pop(0)
                drifts.append(
                    {
                        "entry": entry,
                        "old_context": str(entry.get("context", "")),
                        "new_context": finding.context,
                        "line": finding.line,
                    }
                )
        return drifts

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], reasons: Optional[Dict[tuple, str]] = None
    ) -> "Baseline":
        entries = []
        for finding in findings:
            entry = {
                "rule": finding.rule,
                "path": finding.path,
                "context": finding.context,
                "code": finding.code,
                "reason": (reasons or {}).get(
                    finding.key(), "TODO: justify or fix this exemption"
                ),
            }
            entries.append(entry)
        return cls(entries)


@dataclass
class Project:
    """All parsed sources plus lazily built shared analyses."""

    root: Path
    files: List[SourceFile] = field(default_factory=list)
    _caches: dict = field(default_factory=dict)

    def by_path(self, path: str) -> Optional[SourceFile]:
        for source in self.files:
            if source.path == path:
                return source
        return None

    def shared(self, key: str, build) -> object:
        """Memoize a project-wide analysis (e.g. the call graph)."""
        if key not in self._caches:
            self._caches[key] = build(self)
        return self._caches[key]

    def run(self, rules: Sequence[object]) -> List[Finding]:
        """Run every rule over every file; drop suppressed findings."""
        findings: List[Finding] = []
        for rule in rules:
            for source in self.files:
                for finding in rule.check_file(source, self):
                    if not source.is_suppressed(finding.rule, finding.line):
                        findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return findings


def _iter_py_files(base: Path) -> Iterable[Path]:
    if base.is_file():
        if base.suffix == ".py":
            yield base
        return
    for path in sorted(base.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def load_project(
    root: Optional[Path] = None, paths: Optional[Sequence[Path]] = None
) -> Project:
    """Parse a source tree. ``paths`` defaults to ``<root>/src/repro``."""
    root = Path(root) if root is not None else repo_root()
    bases = [Path(p) for p in paths] if paths else [root / "src" / "repro"]
    project = Project(root=root)
    seen = set()
    for base in bases:
        base = base if base.is_absolute() else root / base
        for path in _iter_py_files(base):
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                # Explicit path outside the root (e.g. a scratch file):
                # keep it absolute rather than refusing to lint it.
                rel = path.resolve().as_posix()
            if rel in seen:
                continue
            seen.add(rel)
            project.files.append(SourceFile(rel, path.read_text()))
    project.files.sort(key=lambda s: s.path)
    return project


def project_from_sources(sources: Dict[str, str], root: Optional[Path] = None) -> Project:
    """Build a Project from in-memory ``{path: text}`` (used by tests)."""
    project = Project(root=Path(root) if root else repo_root())
    for path, text in sorted(sources.items()):
        project.files.append(SourceFile(path, text))
    return project


def run_lint(
    root: Optional[Path] = None,
    paths: Optional[Sequence[Path]] = None,
    rules: Optional[Sequence[object]] = None,
    baseline: Optional[Baseline] = None,
) -> Tuple[List[Finding], List[Finding], Project]:
    """One-call entry point: returns (new, baselined, project)."""
    from repro.lint.rules import get_rules

    project = load_project(root=root, paths=paths)
    findings = project.run(list(rules) if rules is not None else get_rules())
    if baseline is None:
        baseline = Baseline.load(default_baseline_path())
    new, old = baseline.split(findings)
    return new, old, project
