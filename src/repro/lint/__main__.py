"""``python -m repro.lint``: run the determinism & cost sanitizer.

    python -m repro.lint                  # lint src/repro against baseline
    python -m repro.lint --json           # machine-readable findings
    python -m repro.lint --select R1,R4   # subset of rules
    python -m repro.lint --update-baseline  # re-grandfather current findings
    python -m repro.lint --types          # also run mypy on the typed subset
    python -m repro.lint path/to/file.py  # explicit paths

Exit-code contract (relied on by CI and ``tests/test_lint.py``):

* ``0`` — no unbaselined findings (and, with ``--types``, a clean or
  skipped type check),
* ``1`` — at least one unbaselined finding (or type errors),
* ``2`` — internal error (bad arguments, unparsable file, crash).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.core import (
    Baseline,
    default_baseline_path,
    load_project,
    repo_root,
)
from repro.lint.rules import RULES, get_rules

#: Modules held to the stricter ``[tool.mypy]`` contract in pyproject.toml.
TYPED_SUBSET = [
    "src/repro/simtime",
    "src/repro/errors.py",
    "src/repro/util",
    "src/repro/storage/cache.py",
]


def run_types(root: Path) -> int:
    """Run mypy over the typed subset; 0 clean/skipped, 1 errors.

    The container this repo targets does not ship mypy, so a missing
    checker degrades to a loud skip rather than a failure — the config
    in pyproject.toml keeps the contract checkable wherever mypy exists.
    """
    try:
        import mypy  # noqa: F401
    except ImportError:
        print("lint --types: mypy is not installed; skipping type check")
        return 0
    cmd = [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"]
    cmd += [str(root / rel) for rel in TYPED_SUBSET]
    proc = subprocess.run(cmd, cwd=root)
    return 0 if proc.returncode == 0 else 1


def changed_files(root: Path) -> List[Path]:
    """Files under ``src/repro`` changed vs main: the merge-base diff
    plus untracked files. Deleted files are skipped (nothing to lint)."""
    base = subprocess.run(
        ["git", "merge-base", "HEAD", "main"],
        cwd=root, capture_output=True, text=True, check=True,
    ).stdout.strip()
    diff = subprocess.run(
        ["git", "diff", "--name-only", base],
        cwd=root, capture_output=True, text=True, check=True,
    ).stdout.splitlines()
    untracked = subprocess.run(
        ["git", "ls-files", "--others", "--exclude-standard"],
        cwd=root, capture_output=True, text=True, check=True,
    ).stdout.splitlines()
    out = []
    for rel in sorted(set(diff) | set(untracked)):
        if not rel.endswith(".py") or not rel.startswith("src/repro/"):
            continue
        path = root / rel
        if path.exists():
            out.append(path)
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="determinism & simulated-cost sanitizer for the engine",
    )
    parser.add_argument(
        "paths", nargs="*", help="files/directories to lint (default: src/repro)"
    )
    parser.add_argument("--json", action="store_true", help="JSON report on stdout")
    parser.add_argument(
        "--select", help="comma-separated rule ids/names (default: all)"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: src/repro/lint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline entirely"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather all current findings "
        "(keeps reasons of entries that still match)",
    )
    parser.add_argument(
        "--types",
        action="store_true",
        help="also run mypy on the typed subset (simtime, errors, util, "
        "storage/cache)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed vs the main branch (merge-base diff "
        "plus untracked), restricted to src/repro",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.name:26s} {rule.description}")
        return 0

    # The exit-code contract promises 2 — never a traceback-shaped 1 — on
    # internal failure, so the whole run is fenced. Nothing below raises
    # ClusterError/FaultInjected: this is tooling, not engine code.
    try:  # lint: allow[R4]
        root = repo_root()
        rules = get_rules(args.select.split(",") if args.select else None)
        baseline_path = args.baseline or default_baseline_path()
        baseline = (
            Baseline([]) if args.no_baseline else Baseline.load(baseline_path)
        )
        paths = [Path(p) for p in args.paths] or None
        if args.changed:
            if paths is not None:
                print(
                    "repro.lint: --changed and explicit paths are "
                    "mutually exclusive",
                    file=sys.stderr,
                )
                return 2
            paths = changed_files(root)
            if not paths:
                print("repro.lint: --changed: no changed files under src/repro")
                return 0
        # Subset runs (explicit paths or --changed) cannot see findings
        # outside their slice, so unmatched baseline entries are not
        # evidence of staleness there — only full runs enforce them.
        subset = paths is not None
        project = load_project(root=root, paths=paths)
        findings = project.run(rules)
        new, old = baseline.split(findings)

        if args.update_baseline:
            reasons = {
                Baseline._key(entry): entry.get("reason", "")
                for entry in baseline.entries
            }
            rebuilt = Baseline.from_findings(
                findings,
                reasons={f.key(): reasons[f.key()] for f in findings if f.key() in reasons},
            )
            rebuilt.save(baseline_path)
            print(
                f"baseline updated: {len(findings)} entries "
                f"({len(new)} newly grandfathered) -> {baseline_path}"
            )
            return 0

        stale = [] if subset else baseline.unused()
        drifts = [] if subset else baseline.drifted(findings)
        drifted_keys = {id(d["entry"]) for d in drifts}
        if args.json:
            print(
                json.dumps(
                    {
                        "version": 1,
                        "files": len(project.files),
                        "rules": [r.id for r in rules],
                        "findings": [f.to_json() for f in new],
                        "baselined": len(old),
                        "stale_baseline_entries": stale,
                        "drifted_baseline_entries": [
                            {
                                "rule": d["entry"].get("rule"),
                                "path": d["entry"].get("path"),
                                "code": d["entry"].get("code"),
                                "old_context": d["old_context"],
                                "new_context": d["new_context"],
                                "line": d["line"],
                            }
                            for d in drifts
                        ],
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            for finding in new:
                print(finding.render())
            for drift in drifts:
                entry = drift["entry"]
                print(
                    "BASELINE DRIFT: "
                    f"{entry.get('rule')} {entry.get('path')} "
                    f"{entry.get('code')!r} moved from context "
                    f"[{drift['old_context']}] to "
                    f"[{drift['new_context']}] (line {drift['line']}); "
                    "update the entry's context or fix the finding"
                )
            for entry in stale:
                if id(entry) in drifted_keys:
                    continue  # already reported, with the new context
                print(
                    "stale baseline entry (fixed or moved): "
                    f"{entry.get('rule')} {entry.get('path')} "
                    f"[{entry.get('context')}] {entry.get('code')!r}"
                )
            print(
                f"repro.lint: {len(project.files)} files, "
                f"{len(rules)} rules, {len(new)} new finding(s), "
                f"{len(old)} baselined, {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'}"
                f"{f', {len(drifts)} DRIFTED' if drifts else ''}"
            )

        status = 1 if new or stale else 0
        if args.types and status == 0:
            status = run_types(root)
        return status
    except Exception as exc:  # lint: allow[R4] — CLI fence, see above
        print(f"repro.lint: internal error: {exc}", file=sys.stderr)
        return 2


def console() -> None:
    """``repro-lint`` console-script entry point."""
    raise SystemExit(main())


if __name__ == "__main__":
    sys.exit(main())
