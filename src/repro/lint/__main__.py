"""``python -m repro.lint``: run the determinism & cost sanitizer.

    python -m repro.lint                  # lint src/repro against baseline
    python -m repro.lint --json           # machine-readable findings
    python -m repro.lint --select R1,R4   # subset of rules
    python -m repro.lint --update-baseline  # re-grandfather current findings
    python -m repro.lint --types          # also run mypy on the typed subset
    python -m repro.lint path/to/file.py  # explicit paths

Exit-code contract (relied on by CI and ``tests/test_lint.py``):

* ``0`` — no unbaselined findings (and, with ``--types``, a clean or
  skipped type check),
* ``1`` — at least one unbaselined finding (or type errors),
* ``2`` — internal error (bad arguments, unparsable file, crash).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.core import (
    Baseline,
    default_baseline_path,
    load_project,
    repo_root,
)
from repro.lint.rules import RULES, get_rules

#: Modules held to the stricter ``[tool.mypy]`` contract in pyproject.toml.
TYPED_SUBSET = [
    "src/repro/simtime",
    "src/repro/errors.py",
    "src/repro/util",
    "src/repro/storage/cache.py",
]


def run_types(root: Path) -> int:
    """Run mypy over the typed subset; 0 clean/skipped, 1 errors.

    The container this repo targets does not ship mypy, so a missing
    checker degrades to a loud skip rather than a failure — the config
    in pyproject.toml keeps the contract checkable wherever mypy exists.
    """
    try:
        import mypy  # noqa: F401
    except ImportError:
        print("lint --types: mypy is not installed; skipping type check")
        return 0
    cmd = [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"]
    cmd += [str(root / rel) for rel in TYPED_SUBSET]
    proc = subprocess.run(cmd, cwd=root)
    return 0 if proc.returncode == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="determinism & simulated-cost sanitizer for the engine",
    )
    parser.add_argument(
        "paths", nargs="*", help="files/directories to lint (default: src/repro)"
    )
    parser.add_argument("--json", action="store_true", help="JSON report on stdout")
    parser.add_argument(
        "--select", help="comma-separated rule ids/names (default: all)"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: src/repro/lint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline entirely"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to grandfather all current findings "
        "(keeps reasons of entries that still match)",
    )
    parser.add_argument(
        "--types",
        action="store_true",
        help="also run mypy on the typed subset (simtime, errors, util, "
        "storage/cache)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}  {rule.name:26s} {rule.description}")
        return 0

    # The exit-code contract promises 2 — never a traceback-shaped 1 — on
    # internal failure, so the whole run is fenced. Nothing below raises
    # ClusterError/FaultInjected: this is tooling, not engine code.
    try:  # lint: allow[R4]
        root = repo_root()
        rules = get_rules(args.select.split(",") if args.select else None)
        baseline_path = args.baseline or default_baseline_path()
        baseline = (
            Baseline([]) if args.no_baseline else Baseline.load(baseline_path)
        )
        project = load_project(
            root=root, paths=[Path(p) for p in args.paths] or None
        )
        findings = project.run(rules)
        new, old = baseline.split(findings)

        if args.update_baseline:
            reasons = {
                Baseline._key(entry): entry.get("reason", "")
                for entry in baseline.entries
            }
            rebuilt = Baseline.from_findings(
                findings,
                reasons={f.key(): reasons[f.key()] for f in findings if f.key() in reasons},
            )
            rebuilt.save(baseline_path)
            print(
                f"baseline updated: {len(findings)} entries "
                f"({len(new)} newly grandfathered) -> {baseline_path}"
            )
            return 0

        stale = baseline.unused()
        if args.json:
            print(
                json.dumps(
                    {
                        "version": 1,
                        "files": len(project.files),
                        "rules": [r.id for r in rules],
                        "findings": [f.to_json() for f in new],
                        "baselined": len(old),
                        "stale_baseline_entries": stale,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            for finding in new:
                print(finding.render())
            for entry in stale:
                print(
                    "stale baseline entry (fixed or moved): "
                    f"{entry.get('rule')} {entry.get('path')} "
                    f"[{entry.get('context')}] {entry.get('code')!r}"
                )
            print(
                f"repro.lint: {len(project.files)} files, "
                f"{len(rules)} rules, {len(new)} new finding(s), "
                f"{len(old)} baselined, {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'}"
            )

        status = 1 if new or stale else 0
        if args.types and status == 0:
            status = run_types(root)
        return status
    except Exception as exc:  # lint: allow[R4] — CLI fence, see above
        print(f"repro.lint: internal error: {exc}", file=sys.stderr)
        return 2


def console() -> None:
    """``repro-lint`` console-script entry point."""
    raise SystemExit(main())


if __name__ == "__main__":
    sys.exit(main())
