"""``repro.lint``: the determinism & simulated-cost sanitizer.

Every claim this reproduction makes — bit-identical answers under seeded
chaos schedules, byte-identical simulated figures with the decode cache
on, row/batch differential equality — rests on invariants that ordinary
tests cannot see being *violated by new code*:

* no wall-clock or unseeded randomness in engine code (R1, R2),
* every payload byte moved through storage/HDFS/network is charged to
  the ``repro.simtime`` cost model (R3),
* typed ``ClusterError``/``FaultInjected`` exceptions are never swallowed
  by broad ``except`` clauses, so query-level recovery can fire (R4),
* nothing iterates an unordered ``set``/``frozenset`` into plan choice or
  query output without ``sorted(...)`` (R5).

This package machine-enforces them with a small AST-based analysis
framework: a pluggable rule registry (:mod:`repro.lint.rules`), a
project-wide call graph for cost-conformance (:mod:`repro.lint.callgraph`),
per-line ``# lint: allow[RULE-ID]`` suppressions, a committed baseline of
deliberate exemptions (``baseline.json``, every entry carries a reason),
and machine-readable JSON output.

Run it as ``python -m repro.lint`` (exit 0 clean / 1 findings / 2
internal error) or through the tier-1 gate ``tests/test_lint.py``.
"""

from repro.lint.core import (
    Baseline,
    Finding,
    Project,
    SourceFile,
    default_baseline_path,
    load_project,
    repo_root,
    run_lint,
)
from repro.lint.rules import RULES, get_rules

__all__ = [
    "Baseline",
    "Finding",
    "Project",
    "RULES",
    "SourceFile",
    "default_baseline_path",
    "get_rules",
    "load_project",
    "repo_root",
    "run_lint",
]
