"""The rule registry: six invariants the reproduction's claims rest on.

==== ===================== =====================================================
id   name                  protects
==== ===================== =====================================================
R1   no-wall-clock         reproducibility: simulated figures and chaos runs
                           must not read the host clock outside ``bench/``
R2   seeded-randomness     reproducibility: all stochastic choices flow through
                           seeded ``util.rng.DeterministicRng`` streams
R3   cost-conformance      validity of simulated figures: payload bytes moved in
                           storage/hdfs/network/interconnect/obs must be
                           reachable from a ``repro.simtime`` charging context
R4   exception-hygiene     recovery correctness: broad ``except`` may not
                           swallow ``ClusterError``/``FaultInjected``, or the
                           query-restart loop (paper §2.6) never sees the fault
R5   deterministic-iter    plan/answer determinism: no unordered set iteration
                           into planner, executor, columnar, or catalog output
                           without ``sorted(...)``
R6   obs-passivity         trace=on bit-identity: ``repro.obs`` may read the
                           simulated clock but never charge it, mutate cost
                           state, or force lazy column vectors to materialize
==== ===================== =====================================================

Rules are ordinary objects with ``id``/``name``/``description`` and a
``check_file(source, project)`` generator; register new ones by
appending to :data:`RULES`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.lint.callgraph import CallGraph
from repro.lint.core import Finding, SourceFile


def _in_dir(path: str, *dirnames: str) -> bool:
    parts = path.split("/")
    return any(d in parts for d in dirnames)


def _walk_own(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func``'s own body without descending into nested defs.

    ``ast.walk`` visits every descendant, so a ``continue`` on nested
    ``FunctionDef`` nodes skips the def node itself but still scans its
    body as if it belonged to the outer function; this walker prunes the
    whole subtree (nested defs are separate call-graph nodes and are
    analyzed on their own)."""
    stack: List[ast.AST] = [func]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


# =========================================================================== R1
class NoWallClockRule:
    """Host-clock reads make simulated figures and chaos schedules
    unreproducible. Only the benchmark harness (which *measures* real
    time on purpose) and the cost model itself may touch them."""

    id = "R1"
    name = "no-wall-clock"
    description = (
        "time.time/perf_counter/monotonic/datetime.now outside bench/ "
        "and simtime/"
    )

    TIME_CLOCKS = frozenset(
        {
            "time",
            "time_ns",
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
        }
    )
    DATETIME_CLOCKS = frozenset({"now", "utcnow", "today"})

    def _exempt(self, path: str) -> bool:
        return _in_dir(path, "bench", "tests", "simtime") or path.endswith(
            "simtime.py"
        )

    def check_file(self, source: SourceFile, project) -> Iterator[Finding]:
        if self._exempt(source.path):
            return
        time_modules: Set[str] = set()
        datetime_modules: Set[str] = set()
        datetime_classes: Set[str] = set()
        clock_names: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_modules.add(alias.asname or alias.name)
                    elif alias.name == "datetime":
                        datetime_modules.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in self.TIME_CLOCKS:
                            clock_names.add(alias.asname or alias.name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_classes.add(alias.asname or alias.name)

        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in clock_names:
                yield source.finding(
                    self.id, node, f"wall-clock call {func.id}() in engine code"
                )
            elif isinstance(func, ast.Attribute):
                value = func.value
                if (
                    isinstance(value, ast.Name)
                    and value.id in time_modules
                    and func.attr in self.TIME_CLOCKS
                ):
                    yield source.finding(
                        self.id,
                        node,
                        f"wall-clock call {value.id}.{func.attr}() in engine code",
                    )
                elif func.attr in self.DATETIME_CLOCKS and (
                    (isinstance(value, ast.Name) and value.id in datetime_classes)
                    or (
                        isinstance(value, ast.Attribute)
                        and isinstance(value.value, ast.Name)
                        and value.value.id in datetime_modules
                        and value.attr in ("datetime", "date")
                    )
                ):
                    yield source.finding(
                        self.id,
                        node,
                        f"wall-clock call ...{func.attr}() in engine code",
                    )


# =========================================================================== R2
class SeededRandomnessRule:
    """The module-level ``random`` functions share hidden global state,
    and an argless ``random.Random()`` seeds from the OS — both make
    runs unreproducible.  Every stochastic component must draw from a
    named :class:`repro.util.rng.DeterministicRng` stream."""

    id = "R2"
    name = "seeded-randomness"
    description = (
        "module-level random.* calls or direct random.Random construction "
        "outside util/rng.py"
    )

    def _exempt(self, path: str) -> bool:
        return path.endswith("util/rng.py") or _in_dir(path, "tests")

    def check_file(self, source: SourceFile, project) -> Iterator[Finding]:
        if self._exempt(source.path):
            return
        aliases: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                names = ", ".join(a.name for a in node.names)
                yield source.finding(
                    self.id,
                    node,
                    f"from random import {names}: use a seeded "
                    "util.rng.DeterministicRng stream instead",
                )
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in aliases
            ):
                continue
            attr = node.func.attr
            if attr in ("Random", "SystemRandom"):
                detail = (
                    "unseeded" if not node.args and not node.keywords else "direct"
                )
                yield source.finding(
                    self.id,
                    node,
                    f"{detail} random.{attr}() construction: derive a "
                    "util.rng.DeterministicRng(seed, *names) stream instead",
                )
            else:
                yield source.finding(
                    self.id,
                    node,
                    f"module-level random.{attr}() uses shared global state: "
                    "use a seeded util.rng.DeterministicRng stream",
                )


# =========================================================================== R3
class CostConformanceRule:
    """Every payload byte moved through the simulated storage stack must
    be *chargeable* to the simulated clock: the byte-moving call must
    execute inside the dynamic extent of a function that invokes the
    ``repro.simtime`` charging API (directly, above, or below — see
    :mod:`repro.lint.callgraph`).  Uncharged byte movement silently
    deflates the paper-shape figures."""

    id = "R3"
    name = "cost-conformance"
    description = (
        "byte movement in storage//hdfs//network//interconnect not reachable "
        "from a simtime charging context"
    )

    #: Names of the primitive byte-movement operations in this codebase.
    PRIMITIVES = frozenset(
        {
            # DataNode / NameNode block plumbing
            "store_block",
            "read_block",
            "replace_block",
            "_append_block",
            "_read_block",
            # HDFS client byte APIs
            "write",
            "write_file",
            "read",
            "read_file",
            "read_all",
            # datagram fabric
            "send",
        }
    )

    SCOPE_DIRS = ("storage", "hdfs", "network", "interconnect", "obs")
    #: Individual byte-moving modules outside those trees: the
    #: control-plane RPC layer and the event-driven scheduler.
    SCOPE_FILES = ("cluster/rpc.py", "simtime/scheduler.py")

    def check_file(self, source: SourceFile, project) -> Iterator[Finding]:
        if not (
            _in_dir(source.path, *self.SCOPE_DIRS)
            or any(source.path.endswith(f) for f in self.SCOPE_FILES)
        ):
            return
        graph: CallGraph = project.shared("callgraph", CallGraph.build)
        covered: Set[str] = project.shared(
            "cost-coverage", lambda p: graph.coverage()
        )
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name: Optional[str] = None
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            if name not in self.PRIMITIVES:
                continue
            scope = source.scope_of(node)
            key = f"{source.path}::{scope}"
            if scope == "<module>" or key not in covered:
                yield source.finding(
                    self.id,
                    node,
                    f"uncharged byte movement: {name}() in {scope} is not "
                    "reachable from any repro.simtime charging context",
                )


# =========================================================================== R4
class ExceptionHygieneRule:
    """A broad ``except`` that does not re-raise can swallow the typed
    ``ClusterError``/``FaultInjected`` exceptions the chaos layer
    injects, so the session's bounded-retry restart loop never sees the
    fault and the paper's restart-over-recover argument breaks."""

    id = "R4"
    name = "exception-hygiene"
    description = (
        "bare/broad except that can swallow ClusterError/FaultInjected "
        "without re-raising"
    )

    #: Exception names whose catch-without-reraise can hide an injected
    #: fault: anything at or above ClusterError in the hierarchy.
    BROAD = frozenset(
        {"Exception", "BaseException", "ReproError", "ClusterError", "FaultInjected"}
    )

    @classmethod
    def _broad_name(cls, expr: Optional[ast.expr]) -> Optional[str]:
        if expr is None:
            return "bare except:"
        if isinstance(expr, ast.Name) and expr.id in cls.BROAD:
            return expr.id
        if isinstance(expr, ast.Attribute) and expr.attr in cls.BROAD:
            return expr.attr
        if isinstance(expr, ast.Tuple):
            for element in expr.elts:
                found = cls._broad_name(element)
                if found:
                    return found
        return None

    @staticmethod
    def _reraises(body: Sequence[ast.stmt]) -> bool:
        """True if any execution path through the handler raises.

        Raises inside nested function definitions do not count — they
        run later, if ever."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return False

    def check_file(self, source: SourceFile, project) -> Iterator[Finding]:
        if _in_dir(source.path, "tests"):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = self._broad_name(node.type)
            if caught is None or self._reraises(node.body):
                continue
            yield source.finding(
                self.id,
                node,
                f"broad handler ({caught}) swallows the exception: it would "
                "hide ClusterError/FaultInjected from the query retry loop — "
                "narrow the type or re-raise",
            )


# =========================================================================== R5
class DeterministicIterationRule:
    """Iterating a ``set``/``frozenset`` (or an explicit ``.keys()``
    view) feeds its unordered elements into ordered output: rows, plan
    shapes, hash/dispatch choices.  Wrap the iterable in ``sorted(...)``
    or restructure.  Scope is limited to the subsystems whose output
    order is an external contract: planner, executor, catalog, and the
    columnar vector/kernel layer (vector contents and selection vectors
    flow straight into result rows)."""

    id = "R5"
    name = "deterministic-iteration"
    description = (
        "unsorted set/frozenset/.keys() iteration in planner//executor//"
        "catalog//columnar"
    )

    SCOPE_DIRS = ("planner", "executor", "catalog", "columnar")
    SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
    SET_METHODS = frozenset(
        {"union", "intersection", "difference", "symmetric_difference", "copy"}
    )
    SET_ANNOTATIONS = frozenset(
        {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
    )
    #: Order-insensitive consumers: iterating a set into these is fine.
    NEUTRAL_CALLS = frozenset(
        {
            "sorted",
            "len",
            "sum",
            "min",
            "max",
            "any",
            "all",
            "set",
            "frozenset",
            "bool",
        }
    )

    # ------------------------------------------------------- set-typed-ness
    def _annotation_is_set(self, annotation: Optional[ast.expr]) -> bool:
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            return node.attr in self.SET_ANNOTATIONS
        if isinstance(node, ast.Name):
            return node.id in self.SET_ANNOTATIONS
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value.split("[", 1)[0].strip()
            return text.rsplit(".", 1)[-1] in self.SET_ANNOTATIONS
        return False

    def _set_returning_functions(self, source: SourceFile) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._annotation_is_set(node.returns):
                    out.add(node.name)
        return out

    def _is_set_expr(
        self, node: ast.expr, set_names: Set[str], set_funcs: Set[str]
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(
                node.left, set_names, set_funcs
            ) or self._is_set_expr(node.right, set_names, set_funcs)
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                if node.func.id in self.SET_CONSTRUCTORS:
                    return True
                if node.func.id in set_funcs:
                    return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self.SET_METHODS
            ):
                return self._is_set_expr(node.func.value, set_names, set_funcs)
        return False

    def _collect_set_names(
        self, func: ast.AST, set_funcs: Set[str]
    ) -> Set[str]:
        """Local names bound to set-typed expressions (fixpoint pass)."""
        names: Set[str] = set()
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = func.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if self._annotation_is_set(arg.annotation):
                    names.add(arg.arg)
        changed = True
        while changed:
            changed = False
            for node in ast.walk(func):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node is not func:
                        continue
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.target is not None:
                    if self._annotation_is_set(node.annotation):
                        if (
                            isinstance(node.target, ast.Name)
                            and node.target.id not in names
                        ):
                            names.add(node.target.id)
                            changed = True
                        continue
                    targets, value = [node.target], node.value
                elif isinstance(node, ast.AugAssign):
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                if self._is_set_expr(value, names, set_funcs):
                    for target in targets:
                        if isinstance(target, ast.Name) and target.id not in names:
                            names.add(target.id)
                            changed = True
        return names

    # ------------------------------------------------------------- detection
    def _iter_functions(self, source: SourceFile) -> Iterator[ast.AST]:
        yield source.tree
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def check_file(self, source: SourceFile, project) -> Iterator[Finding]:
        if not _in_dir(source.path, *self.SCOPE_DIRS):
            return
        yield from self.scan(source)

    def scan(self, source: SourceFile) -> Iterator[Finding]:
        """Scope-free detection pass (R8 reuses this on its own files)."""
        set_funcs = self._set_returning_functions(source)
        flagged: Set[int] = set()
        for func in self._iter_functions(source):
            set_names = self._collect_set_names(func, set_funcs)

            def is_unordered(expr: ast.expr) -> bool:
                if (
                    isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "keys"
                    and not expr.args
                ):
                    return True
                return self._is_set_expr(expr, set_names, set_funcs)

            for node in ast.walk(func):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node is not func:
                        continue
                iterables: List[ast.expr] = []
                what = ""
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iterables, what = [node.iter], "a for loop"
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                    iterables = [gen.iter for gen in node.generators]
                    what = "a comprehension"
                elif isinstance(node, ast.Call):
                    callee: Optional[str] = None
                    if isinstance(node.func, ast.Name):
                        callee = node.func.id
                    elif isinstance(node.func, ast.Attribute):
                        callee = node.func.attr
                    if callee in ("list", "tuple", "enumerate", "iter", "reversed"):
                        iterables, what = list(node.args[:1]), f"{callee}(...)"
                    elif callee == "join":
                        iterables, what = list(node.args[:1]), "str.join"
                elif isinstance(node, ast.YieldFrom):
                    iterables, what = [node.value], "yield from"
                for iterable in iterables:
                    if not is_unordered(iterable):
                        continue
                    lineno = getattr(iterable, "lineno", getattr(node, "lineno", 1))
                    if lineno in flagged:
                        continue
                    flagged.add(lineno)
                    yield source.finding(
                        self.id,
                        iterable,
                        f"unordered set iteration feeds {what}: wrap the "
                        "iterable in sorted(...) to make the order "
                        "deterministic",
                    )


# =========================================================================== R6
class ObsPassivityRule:
    """Observability must be passive: :mod:`repro.obs` may *read* the
    simulated clock (``acc.seconds`` and friends) but never spend or
    mutate it. A charging call (or a write to a cost-accumulator
    attribute) inside ``obs/`` would make traced runs diverge from
    untraced runs, breaking the trace=on bit-identity contract.

    The same contract covers the vectorized path's laziness: tracing
    must not *force* column vectors — materializing a dictionary column
    (``tolist``/``gather``/``to_rows``/``take``) from a trace hook would
    change what work the traced run performs (and when its cached
    materialized views appear), so those calls are banned in ``obs/``
    alongside the charging API."""

    id = "R6"
    name = "obs-passivity"
    description = (
        "simtime charging call, cost-attribute write, or vector "
        "materialization inside obs/ (observability must never spend "
        "simulated time nor force lazy columns)"
    )

    #: The repro.simtime charging API.
    CHARGING = frozenset(
        {
            "fixed",
            "disk_read",
            "disk_write",
            "cpu_tuples",
            "cpu_bytes",
            "network",
            "scaled",
            "charge_control",
        }
    )
    #: Mutable cost-accumulator state.
    COST_ATTRS = frozenset(
        {"seconds", "disk_read_bytes", "disk_write_bytes", "net_bytes", "tuples"}
    )
    #: Column-vector materialization points: forcing one from a trace
    #: hook would make traced runs do different (cached) work.
    MATERIALIZING = frozenset({"tolist", "gather", "to_rows", "take"})

    def check_file(self, source: SourceFile, project) -> Iterator[Finding]:
        if not _in_dir(source.path, "obs"):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                name: Optional[str] = None
                if isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                elif isinstance(node.func, ast.Name):
                    name = node.func.id
                if name in self.CHARGING:
                    yield source.finding(
                        self.id,
                        node,
                        f"obs/ calls charging API {name}(): observability "
                        "must record simulated time, never spend it",
                    )
                elif (
                    name in self.MATERIALIZING
                    and isinstance(node.func, ast.Attribute)
                ):
                    yield source.finding(
                        self.id,
                        node,
                        f"obs/ calls .{name}(): tracing must never force "
                        "column-vector (dictionary) materialization",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in self.COST_ATTRS
                    ):
                        yield source.finding(
                            self.id,
                            target,
                            f"obs/ writes cost attribute .{target.attr}: "
                            "observability must never mutate accumulator "
                            "state",
                        )


# =========================================================================== R7
class CrossQueryIsolationRule:
    """Writes to module-level or class-level mutable state from code
    reachable from the concurrent entry points break the serial≡
    concurrent bit-identity contract unless the sharing is deliberate.

    Reachability is computed over the *resolved* call-graph edges only
    (fuzzy name-matching would drag half the repo into the set and bury
    real races in noise).  A write is exempt when its
    ``path::qualname`` key appears in the shared-state registry
    (``repro/sanitize/registry.py`` — parsed from the linted tree, not
    the installed package) with a written reason, or under a per-line
    ``# lint: allow[R7]``."""

    id = "R7"
    name = "cross-query-isolation"
    description = (
        "module/class-level mutable state written by code reachable from "
        "the concurrent entry points and not in the shared-state registry"
    )

    #: Functions in these files are the concurrent roots: everything the
    #: multi-query composer, the workers, and the event scheduler run.
    ENTRY_FILES = (
        "executor/concurrent.py",
        "executor/runner.py",
        "cluster/worker.py",
        "simtime/scheduler.py",
    )
    REGISTRY_SUFFIX = "sanitize/registry.py"
    REGISTRY_NAME = "SHARED_STATE"

    MUTABLE_CONSTRUCTORS = frozenset(
        {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
    )
    MUTATORS = frozenset(
        {
            "append",
            "extend",
            "insert",
            "add",
            "update",
            "setdefault",
            "pop",
            "popitem",
            "remove",
            "discard",
            "clear",
            "appendleft",
            "extendleft",
        }
    )

    # ------------------------------------------------------ shared analyses
    @classmethod
    def _registry(cls, project) -> Dict[str, str]:
        """Parse SHARED_STATE out of the linted tree's registry module."""
        for source in project.files:
            if not source.path.endswith(cls.REGISTRY_SUFFIX):
                continue
            for node in ast.walk(source.tree):
                target: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                elif isinstance(node, ast.AnnAssign):
                    target = node.target
                else:
                    continue
                if (
                    isinstance(target, ast.Name)
                    and target.id == cls.REGISTRY_NAME
                    and node.value is not None
                ):
                    try:
                        value = ast.literal_eval(node.value)
                    except ValueError:
                        continue
                    if isinstance(value, dict):
                        return {str(k): str(v) for k, v in value.items()}
        return {}

    @classmethod
    def _reachable(cls, project) -> Set[str]:
        graph: CallGraph = project.shared("callgraph", CallGraph.build)
        roots = graph.functions_in(*cls.ENTRY_FILES)
        return graph.reachable_from(roots, include_fuzzy=False)

    # --------------------------------------------------------- file indexes
    def _is_mutable_value(self, node: Optional[ast.expr]) -> bool:
        if isinstance(
            node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
        ):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            return name in self.MUTABLE_CONSTRUCTORS
        return False

    def _module_mutables(self, source: SourceFile) -> Set[str]:
        out: Set[str] = set()
        for node in source.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            if value is not None and self._is_mutable_value(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
        return out

    def _class_mutables(self, source: SourceFile) -> Dict[str, Set[str]]:
        """class qualname -> attrs bound to mutables in the class body
        and never rebound per-instance via ``self.attr = ...``."""
        out: Dict[str, Set[str]] = {}

        def visit(node: ast.AST, qual: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    inner = child.name if not qual else f"{qual}.{child.name}"
                    attrs: Set[str] = set()
                    rebound: Set[str] = set()
                    for stmt in child.body:
                        targets: List[ast.expr] = []
                        value: Optional[ast.expr] = None
                        if isinstance(stmt, ast.Assign):
                            targets, value = stmt.targets, stmt.value
                        elif isinstance(stmt, ast.AnnAssign):
                            targets, value = [stmt.target], stmt.value
                        if value is not None and self._is_mutable_value(value):
                            for target in targets:
                                if isinstance(target, ast.Name):
                                    attrs.add(target.id)
                    for sub in ast.walk(child):
                        if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                            subtargets = (
                                sub.targets
                                if isinstance(sub, ast.Assign)
                                else [sub.target]
                            )
                            for target in subtargets:
                                if (
                                    isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"
                                ):
                                    rebound.add(target.attr)
                    attrs -= rebound
                    if attrs:
                        out[inner] = attrs
                    visit(child, inner)
                else:
                    visit(child, qual)

        visit(source.tree, "")
        return out

    # ------------------------------------------------------------ detection
    @staticmethod
    def _locals_of(func: ast.AST) -> Set[str]:
        """Names bound locally in ``func`` (excluding ``global`` names)."""
        bound: Set[str] = set()
        globals_: Set[str] = set()
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = func.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                bound.add(arg.arg)
        for node in _walk_own(func):
            if isinstance(node, ast.Global):
                globals_.update(node.names)
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.NamedExpr)):
                targets = [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.target]
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                targets = [
                    item.optional_vars
                    for item in node.items
                    if item.optional_vars is not None
                ]
            for target in targets:
                stack = [target]
                while stack:
                    leaf = stack.pop()
                    if isinstance(leaf, ast.Name):
                        bound.add(leaf.id)
                    elif isinstance(leaf, (ast.Tuple, ast.List)):
                        stack.extend(leaf.elts)
                    elif isinstance(leaf, ast.Starred):
                        stack.append(leaf.value)
                    # Subscript/Attribute targets bind nothing local.
        return bound - globals_

    def check_file(self, source: SourceFile, project) -> Iterator[Finding]:
        reach: Set[str] = project.shared("r7-reachable", self._reachable)
        registry: Dict[str, str] = project.shared("r7-registry", self._registry)
        module_mutables = self._module_mutables(source)
        class_mutables = self._class_mutables(source)
        class_quals = set(class_mutables)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                class_quals.add(node.name)  # top-level short form is enough

        functions: List[ast.AST] = [
            node
            for node in ast.walk(source.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        locals_cache: Dict[int, Set[str]] = {}

        def enclosing_class(scope: str) -> Optional[str]:
            parts = scope.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:cut])
                if prefix in class_quals or prefix in class_mutables:
                    return prefix
            return None

        def emit(node: ast.AST, kind: str, registry_key: str) -> Optional[Finding]:
            if registry_key in registry:
                return None
            return source.finding(
                self.id,
                node,
                f"{kind} is written by code reachable from the concurrent "
                f"entry points: namespace it per-query/per-engine or "
                f"register '{registry_key}' in "
                f"repro/sanitize/registry.py with a reason",
            )

        for func in functions:
            scope = (
                f"{source.scope_of(func)}.{func.name}"
                if source.scope_of(func) != "<module>"
                else func.name
            )
            key = f"{source.path}::{scope}"
            if key not in reach:
                continue
            shadowed = locals_cache.setdefault(id(func), self._locals_of(func))
            cls_qual = enclosing_class(scope)

            for node in _walk_own(func):
                finding: Optional[Finding] = None
                # -- writes through a module-level mutable --------------
                target_expr: Optional[ast.expr] = None
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                    candidates = (
                        node.targets
                        if isinstance(node, (ast.Assign, ast.Delete))
                        else [node.target]
                    )
                    for target in candidates:
                        if isinstance(target, ast.Subscript):
                            target_expr = target.value
                        elif isinstance(target, ast.Name) and isinstance(
                            node, ast.AugAssign
                        ):
                            target_expr = target
                        if (
                            isinstance(target_expr, ast.Name)
                            and target_expr.id in module_mutables
                            and target_expr.id not in shadowed
                        ):
                            finding = emit(
                                node,
                                f"module-level mutable '{target_expr.id}'",
                                f"{source.path}::{target_expr.id}",
                            )
                        # -- class attribute assignment ------------------
                        if isinstance(target, ast.Attribute):
                            owner = target.value
                            owner_cls: Optional[str] = None
                            if isinstance(owner, ast.Name):
                                if owner.id == "cls" and cls_qual:
                                    owner_cls = cls_qual
                                elif owner.id in class_quals:
                                    owner_cls = owner.id
                            elif (
                                isinstance(owner, ast.Call)
                                and isinstance(owner.func, ast.Name)
                                and owner.func.id == "type"
                            ):
                                owner_cls = cls_qual or "<class>"
                            if owner_cls is not None:
                                finding = emit(
                                    node,
                                    f"class attribute '{owner_cls}.{target.attr}'",
                                    f"{source.path}::{owner_cls}.{target.attr}",
                                )
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr in self.MUTATORS:
                        owner = node.func.value
                        if (
                            isinstance(owner, ast.Name)
                            and owner.id in module_mutables
                            and owner.id not in shadowed
                        ):
                            finding = emit(
                                node,
                                f"module-level mutable '{owner.id}'",
                                f"{source.path}::{owner.id}",
                            )
                        elif (
                            isinstance(owner, ast.Attribute)
                            and isinstance(owner.value, ast.Name)
                        ):
                            base = owner.value.id
                            if base in ("self", "cls") and cls_qual:
                                attrs = class_mutables.get(cls_qual, set())
                                if owner.attr in attrs:
                                    finding = emit(
                                        node,
                                        f"class-body mutable "
                                        f"'{cls_qual}.{owner.attr}'",
                                        f"{source.path}::{cls_qual}.{owner.attr}",
                                    )
                            elif base in class_quals:
                                finding = emit(
                                    node,
                                    f"class attribute '{base}.{owner.attr}'",
                                    f"{source.path}::{base}.{owner.attr}",
                                )
                if finding is not None:
                    yield finding


# =========================================================================== R8
class SchedulerDeterminismRule:
    """The concurrent interleaving must be a pure function of
    ``(ready_time, key)`` — never of memory layout.  In the scheduler,
    the concurrent composer, and the resource-queue manager this
    forbids: ``id()``-based keys (CPython addresses vary run to run),
    unsorted set/``.keys()`` iteration feeding any downstream order,
    ``min``/``max`` over raw dict views (ties resolve by insertion
    accident, not by a total key), and heap pushes whose entry is not a
    tuple literal (an unkeyed entry falls back to object comparison —
    or worse, address order)."""

    id = "R8"
    name = "scheduler-determinism"
    description = (
        "id()-keys, unsorted set iteration, dict-view min/max, or unkeyed "
        "heap pushes in scheduler/concurrent/resqueue code"
    )

    SCOPE_FILES = (
        "simtime/scheduler.py",
        "executor/concurrent.py",
        "executor/runner.py",
        "cluster/resqueue.py",
    )

    _set_scan = DeterministicIterationRule()

    def check_file(self, source: SourceFile, project) -> Iterator[Finding]:
        if not any(source.path.endswith(f) for f in self.SCOPE_FILES):
            return
        for finding in self._set_scan.scan(source):
            yield Finding(
                rule=self.id,
                path=finding.path,
                line=finding.line,
                message=(
                    "unordered iteration feeds the scheduler interleaving: "
                    + finding.message
                ),
                context=finding.context,
                code=finding.code,
            )
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "id" and node.args:
                yield source.finding(
                    self.id,
                    node,
                    "id()-based key: CPython object addresses vary run to "
                    "run, making the interleaving depend on memory layout — "
                    "key on stable identifiers like (query_id, slice, segment)",
                )
                continue
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name == "heappush" and len(node.args) >= 2:
                if not isinstance(node.args[1], ast.Tuple):
                    yield source.finding(
                        self.id,
                        node,
                        "unkeyed heap push: push an explicit "
                        "(time, rank, seq, key) tuple so pops are "
                        "total-ordered",
                    )
            elif name in ("min", "max") and node.args:
                first = node.args[0]
                if (
                    isinstance(first, ast.Call)
                    and isinstance(first.func, ast.Attribute)
                    and first.func.attr in ("values", "items")
                    and not first.args
                ):
                    yield source.finding(
                        self.id,
                        node,
                        f"{name}() over a raw dict .{first.func.attr}() view: "
                        "ties resolve by insertion accident — sort with an "
                        "explicit total key instead",
                    )


# =========================================================================== R9
class RpcPairingRule:
    """Two lexical pairing contracts keep the RPC protocol and the cost
    ledger honest under aborts:

    * every module that builds a DISPATCH message must also handle (or
      emit) COMPLETE **and** ABORT — a dispatch site with no abort path
      leaks in-flight tasks when a query dies;
    * a ``for`` loop that abandons a *charged* iterator (one that was
      handed a cost accumulator) via ``break`` must own the iterator and
      close it in ``try/finally`` (or ``contextlib.closing``), otherwise
      the generator's own ``finally`` charges — which keep abandoned
      scans honest — fire at GC time, i.e. whenever memory pressure
      says, not when the query says."""

    id = "R9"
    name = "rpc-pairing"
    description = (
        "DISPATCH construction without COMPLETE/ABORT handling, or a "
        "charged iterator abandoned by break without an owned close"
    )

    SCOPE_DIRS = ("executor", "cluster", "interconnect")

    # ------------------------------------------------------- charged calls
    @staticmethod
    def _is_charged_call(node: ast.expr) -> bool:
        """A call that threads a cost accumulator (``acc``) through."""
        if not isinstance(node, ast.Call):
            return False
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            if isinstance(value, ast.Name) and value.id == "acc":
                return True
            if isinstance(value, ast.Attribute) and value.attr == "acc":
                return True
        return False

    @staticmethod
    def _has_direct_break(loop: ast.AST) -> bool:
        """True if the loop body breaks out of *this* loop."""
        stack: List[ast.AST] = list(loop.body) + list(
            getattr(loop, "orelse", []) or []
        )
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Break):
                return True
            if isinstance(
                node,
                (ast.For, ast.AsyncFor, ast.While, ast.FunctionDef,
                 ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue  # break inside belongs to the inner construct
            stack.extend(ast.iter_child_nodes(node))
        return False

    # ----------------------------------------------------- dispatch pairing
    def _check_dispatch(self, source: SourceFile) -> Iterator[Finding]:
        mentioned: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Name):
                mentioned.add(node.id)
            elif isinstance(node, ast.Attribute):
                mentioned.add(node.attr)
            elif isinstance(node, ast.ImportFrom):
                mentioned.update(a.asname or a.name for a in node.names)
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.Call)
                and (
                    (isinstance(node.func, ast.Name) and node.func.id == "RpcMessage")
                    or (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "RpcMessage"
                    )
                )
            ):
                continue
            kind: Optional[str] = None
            for keyword in node.keywords:
                if keyword.arg != "kind":
                    continue
                value = keyword.value
                if isinstance(value, ast.Name):
                    kind = value.id
                elif isinstance(value, ast.Attribute):
                    kind = value.attr
                elif isinstance(value, ast.Constant):
                    kind = str(value.value).upper()
            if kind != "DISPATCH":
                continue
            missing = [
                partner
                for partner in ("COMPLETE", "ABORT")
                if partner not in mentioned
            ]
            if missing:
                yield source.finding(
                    self.id,
                    node,
                    "DISPATCH constructed here but this module never "
                    f"references {'/'.join(missing)}: every dispatch site "
                    "must be lexically paired with completion AND abort "
                    "handling",
                )

    # --------------------------------------------------- iterator discipline
    def _check_iterators(self, source: SourceFile) -> Iterator[Finding]:
        functions = [
            node
            for node in ast.walk(source.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for func in functions:
            charged_names: Set[str] = set()
            closed_names: Set[str] = set()
            for node in _walk_own(func):
                if isinstance(node, ast.Assign) and self._is_charged_call(
                    node.value
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            charged_names.add(target.id)
                # name.close() inside a finally, or closing(name)
                if isinstance(node, ast.Try):
                    for stmt in node.finalbody:
                        for sub in ast.walk(stmt):
                            if not isinstance(sub, ast.Call):
                                continue
                            if (
                                isinstance(sub.func, ast.Attribute)
                                and sub.func.attr == "close"
                                and isinstance(sub.func.value, ast.Name)
                            ):
                                closed_names.add(sub.func.value.id)
                            elif (
                                # the duck-typed form for iterators that
                                # may be plain iter(list):
                                #   close = getattr(it, "close", None)
                                isinstance(sub.func, ast.Name)
                                and sub.func.id == "getattr"
                                and len(sub.args) >= 2
                                and isinstance(sub.args[0], ast.Name)
                                and isinstance(sub.args[1], ast.Constant)
                                and sub.args[1].value == "close"
                            ):
                                closed_names.add(sub.args[0].id)
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "closing"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                ):
                    closed_names.add(node.args[0].id)
            for node in _walk_own(func):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                if not self._has_direct_break(node):
                    continue
                if self._is_charged_call(node.iter):
                    yield source.finding(
                        self.id,
                        node,
                        "break abandons an anonymous charged iterator: bind "
                        "it to a name and close it in try/finally (or "
                        "contextlib.closing) so its finally-charges fire "
                        "now, not at GC time",
                    )
                elif (
                    isinstance(node.iter, ast.Name)
                    and node.iter.id in charged_names
                    and node.iter.id not in closed_names
                ):
                    yield source.finding(
                        self.id,
                        node,
                        f"break abandons charged iterator "
                        f"'{node.iter.id}' without closing it: wrap the "
                        "loop in try/finally with "
                        f"{node.iter.id}.close() (or contextlib.closing)",
                    )

    def check_file(self, source: SourceFile, project) -> Iterator[Finding]:
        if not _in_dir(source.path, *self.SCOPE_DIRS):
            return
        yield from self._check_dispatch(source)
        yield from self._check_iterators(source)


RULES = [
    NoWallClockRule(),
    SeededRandomnessRule(),
    CostConformanceRule(),
    ExceptionHygieneRule(),
    DeterministicIterationRule(),
    ObsPassivityRule(),
    CrossQueryIsolationRule(),
    SchedulerDeterminismRule(),
    RpcPairingRule(),
]


def get_rules(select: Optional[Iterable[str]] = None) -> List[object]:
    """Return registered rules, optionally filtered by id or name."""
    if select is None:
        return list(RULES)
    wanted = {s.strip() for s in select}
    chosen = [r for r in RULES if r.id in wanted or r.name in wanted]
    unknown = wanted - {r.id for r in chosen} - {r.name for r in chosen}
    if unknown:
        known = ", ".join(f"{r.id}/{r.name}" for r in RULES)
        raise ValueError(f"unknown rule(s) {sorted(unknown)}; known: {known}")
    return chosen
