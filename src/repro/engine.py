"""The HAWQ engine facade: master, sessions, and the full SQL surface.

``Engine`` stands up a whole simulated cluster — HDFS DataNodes,
stateless segments, the unified catalog service on the master, a warm
standby fed by log shipping, and a fault detector — and ``Session``
(from :meth:`Engine.connect`) is the libpq-equivalent: it parses,
analyzes, plans, dispatches self-described plans and returns results
with their simulated cost.

Typical use::

    from repro import Engine

    engine = Engine(num_segment_hosts=4, segments_per_host=2)
    session = engine.connect()
    session.execute("CREATE TABLE t (a INT, b TEXT) DISTRIBUTED BY (a)")
    session.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
    result = session.execute("SELECT a, count(*) FROM t GROUP BY a")
    print(result.rows, result.cost.seconds)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import (
    Column,
    DataType,
    Distribution,
    Partition,
    PartitionSpec,
    TableSchema,
)
from repro.catalog.security import PermissionDenied, SecurityManager
from repro.catalog.service import (
    CATALOG_RELATION_COLUMNS,
    CatalogService,
    catalog_relation_rows,
    catalog_relation_schema,
)
from repro.catalog.stats import TableStats
from repro.cluster.fault import FaultDetector
from repro.cluster.rpc import RpcBus
from repro.cluster.segment import Segment
from repro.cluster.standby import StandbyMaster
from repro.cluster.worker import SegmentWorker, WorkerServices
from repro.errors import (
    CatalogError,
    ClusterError,
    ExecutorError,
    HdfsError,
    MasterUnavailable,
    QueryCanceled,
    QueryRetriesExhausted,
    ReproError,
    SegmentDown,
    SemanticError,
    SqlError,
    TransactionError,
    UndefinedObject,
)
from repro.executor.expr import compile_expr
from repro.executor.runner import (
    DistributedRuntime,
    ExecutionContext,
    QueryResult,
)
from repro.hdfs import Hdfs
from repro.interconnect.exchange import ExchangeFabric
from repro.network.simnet import NetworkConditions, SimNetwork
from repro.obs.activity import ClusterTelemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.sysviews import (
    SYSTEM_VIEW_COLUMNS,
    system_view_rows,
    system_view_schema,
)
from repro.obs.trace import TraceCollector
from repro.planner.analyzer import Analyzer, RelationInfo
from repro.planner.dispatch import QD_SEGMENT, build_self_described_plan
from repro.planner.logical import DerivedSource, LogicalQuery
from repro.planner.planner import Planner, PlannerOptions
from repro.pxf.registry import PxfRegistry
from repro.simtime import CostAccumulator, CostModel, QueryCost
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.storage import get_format
from repro.storage.base import WriteResult
from repro.storage.cache import (
    DEFAULT_CAPACITY_BYTES as DEFAULT_CACHE_BYTES,
    BlockDecodeCache,
)
from repro.txn.locks import LockMode
from repro.txn.manager import IsolationLevel, Transaction, TransactionManager
from repro.txn.mvcc import Snapshot


class Engine:
    """One simulated HAWQ cluster."""

    def __init__(
        self,
        num_segment_hosts: int = 4,
        segments_per_host: int = 2,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
        replication: int = 3,
        block_size: int = 256 * 1024,
        interconnect: str = "udp",
        planner_options: Optional[PlannerOptions] = None,
        metadata_dispatch: bool = True,
        pipelined: bool = True,
        work_mem: float = 1.5e9,
        data_path: str = "/hawq",
        with_standby: bool = True,
        executor_mode: str = "batch",
        block_cache_bytes: int = DEFAULT_CACHE_BYTES,
        cache_simulated_costs: bool = True,
        max_query_retries: int = 3,
        retry_backoff: float = 0.25,
    ):
        self.cost_model = cost_model or CostModel()
        self.interconnect = interconnect
        self.metadata_dispatch = metadata_dispatch
        self.pipelined = pipelined
        self.work_mem = work_mem
        self.data_path = data_path
        self.planner_options = planner_options or PlannerOptions()
        self.seed = seed
        if executor_mode not in ("row", "batch"):
            raise ReproError(f"unknown executor_mode {executor_mode!r}")
        #: 'batch' (default) vectorizes SeqScan→Filter→Project pipelines
        #: and key/aggregate extraction; 'row' is the differential-test
        #: fallback. Results and simulated costs are identical.
        self.executor_mode = executor_mode
        #: Segment-local LRU cache of decoded storage blocks; 0 disables.
        #: With ``cache_simulated_costs`` (default) cache hits replay
        #: their original simulated charges so figures are unchanged;
        #: disabling it makes hits free on the simulated clock as well.
        self.block_cache = (
            BlockDecodeCache(block_cache_bytes, charge_hits=cache_simulated_costs)
            if block_cache_bytes
            else None
        )
        #: Bounded query-restart policy (paper §2.6: restarting a query
        #: against failover assignments beats heavyweight recovery).
        self.max_query_retries = max_query_retries
        #: Base simulated-clock backoff before a retry; doubles per retry.
        self.retry_backoff = retry_backoff
        #: Optional chaos fault injector (see :mod:`repro.chaos`). The
        #: engine reports scan progress to it and it fires scheduled
        #: faults on the simulated clock, possibly mid-query.
        self.chaos = None
        #: Engine-wide observability counters (see :mod:`repro.obs`);
        #: sessions snapshot-diff it per statement onto
        #: ``QueryResult.metrics``. Purely passive — never charged.
        self.metrics = MetricsRegistry()
        #: Engine-lifetime memo of compiled row/batch expression kernels
        #: keyed by (kind, id(expr), layout): re-dispatching a slice to
        #: N segments — or restarting a query after a chaos fault —
        #: reuses one compiled closure instead of recompiling per
        #: segment per attempt.
        self.kernel_cache: dict = {}
        #: Optional :class:`repro.sanitize.DetSan` attached by
        #: ``DetSan.install_engine``: workers scope every dispatched
        #: task to its query id so mutations of shared caches are
        #: attributed (and cross-query races on unregistered state
        #: raise). None costs nothing.
        self.detsan = None
        #: The QD/QE process group of the in-flight execution attempt
        #: (set by :meth:`Session._execute_attempt`); chaos kills reach
        #: workers by dropping their RPC channel on this runtime.
        self._active_runtime: Optional[DistributedRuntime] = None
        #: Query ids with a pending cancellation request. Serial
        #: dispatch notices at the next wave boundary; workers refuse
        #: new slices and scan lanes for a cancelled id; the concurrent
        #: driver is additionally notified through ``_cancel_notify``.
        self._cancel_requests: set = set()
        #: Callback installed by the in-flight concurrent batch so a
        #: ``Session.cancel`` lands as a scheduler event immediately.
        self._cancel_notify = None

        self.hdfs = Hdfs(block_size=block_size, replication=replication, seed=seed)
        self.hosts = [f"host{i}" for i in range(num_segment_hosts)]
        for host in self.hosts:
            self.hdfs.add_datanode(host, num_disks=12)
        self.segments = [
            Segment(segment_id=i, host=self.hosts[i % num_segment_hosts])
            for i in range(num_segment_hosts * segments_per_host)
        ]
        self.num_segments = len(self.segments)

        self.txns = TransactionManager()
        self.catalog = CatalogService(on_change=self._on_catalog_change)
        self.standby = StandbyMaster(self.txns.wal) if with_standby else None
        self.fault_detector = FaultDetector(self.segments, seed=seed)
        self.pxf = PxfRegistry()
        self.pxf.attach_hdfs(self.hdfs)
        self.security = SecurityManager()
        #: Passive cluster telemetry behind the pg_stat_* system views
        #: (:mod:`repro.obs.sysviews`): the serial dispatcher and the
        #: concurrent driver publish live statement/queue/segment state
        #: into it, and every settled statement lands in its workload
        #: repository. Reads only — lint R6 keeps the views passive.
        self.telemetry = ClusterTelemetry(
            segments=self.segments,
            security=self.security,
            is_cancelled=self.is_cancelled,
        )
        self._load_rng = itertools.count()  # round-robin for random dist
        #: Engine-wide statement id allocator: every dispatched query
        #: gets a unique id so RPCs and traces from concurrent sessions
        #: stay attributable (and selectable) per statement.
        self._query_ids = itertools.count(1)
        #: Bumped by ALTER TABLE storage rewrites so new physical files
        #: never collide with a previous generation's paths.
        self._table_generation: Dict[str, int] = {}

        with self.txns.run() as txn:
            for segment in self.segments:
                self.catalog.register_segment(segment.segment_id, segment.host, txn.xid)

    # --------------------------------------------------------------- plumbing
    def _on_catalog_change(self, table: str, op: str, row: dict, xid: int) -> None:
        self.txns.wal.append(xid, "change", table=table, op=op, row=row)

    def connect(self, role: str = "gpadmin") -> "Session":
        """Open a session (the JDBC/ODBC/libpq stand-in) as ``role``."""
        self.security.role(role)  # must exist
        return Session(self, role=role)

    # --------------------------------------------------------- fault handling
    def run_fault_detection(self) -> List[int]:
        """Master-side fault detector pass: mark dead segments down in the
        catalog (paper Section 2.6)."""
        down = self.fault_detector.check()
        if down:
            with self.txns.run() as txn:
                snapshot = txn.statement_snapshot()
                for segment_id in down:
                    self.catalog.set_segment_status(
                        segment_id, "down", txn.xid, snapshot
                    )
        return down

    def fail_segment(self, segment_id: int) -> None:
        self.fault_detector.fail_segment(segment_id)
        self.run_fault_detection()

    def drop_worker_channel(self, segment_id: int) -> None:
        """Kill a segment's QE process for the in-flight attempt: its RPC
        channel closes, so the master can no longer dispatch to it and
        the (dead) worker's own reports fail with ``SegmentDown`` — which
        the session's bounded-restart loop turns into a query restart.
        A no-op outside query execution (there is no process to kill;
        the next attempt spawns fresh workers against failover hosts)."""
        if self._active_runtime is not None:
            self._active_runtime.bus.drop(f"seg{segment_id}")

    # ----------------------------------------------------------- cancellation
    def cancel_query(self, query_id: int) -> None:
        """Request cancellation of an in-flight statement by id.

        Serial dispatch notices at its next wave boundary; segment
        workers refuse further slices and scan lanes tagged with the
        id; a running concurrent batch is notified immediately so the
        cancellation lands as a scheduler event at the current
        simulated time. Cancelling an unknown or finished id is a
        silent no-op (the pg_cancel_backend contract).
        """
        self._cancel_requests.add(query_id)
        if self._cancel_notify is not None:
            self._cancel_notify(query_id)

    def is_cancelled(self, query_id: int) -> bool:
        """True when ``query_id`` has a pending cancellation request."""
        return query_id in self._cancel_requests

    def recover_segment(self, segment_id: int) -> None:
        self.fault_detector.recover_segment(segment_id)
        with self.txns.run() as txn:
            self.catalog.set_segment_status(
                segment_id, "up", txn.xid, txn.statement_snapshot()
            )

    def promote_standby(self) -> None:
        """Fail the master over to the warm standby."""
        if self.standby is None:
            raise ReproError("engine was built without a standby master")
        self.catalog = self.standby.promote()
        # The promoted catalog starts logging to the (new) WAL so a
        # future standby could be attached.
        self.catalog._on_change = self._on_catalog_change
        for table in self.catalog.tables.values():
            table._on_change = self._on_catalog_change

    def crash_master(self) -> List[int]:
        """Simulate a primary-master crash and fail over to the standby.

        In-flight transactions die with the master: they are aborted
        (running truncate-on-abort, the stand-in for post-crash garbage
        collection) so committed data survives intact and uncommitted
        appends leave no bytes behind. The warm standby is promoted and
        becomes the authoritative catalog; the consumed standby slot is
        cleared. Returns the aborted xids.
        """
        if self.standby is None:
            raise MasterUnavailable(
                "primary master crashed and no standby remains to promote"
            )
        aborted = self.txns.abort_all_active()
        self.promote_standby()
        self.standby = None
        return aborted

    # ----------------------------------------------------------- chaos hooks
    def attach_chaos(self, injector) -> None:
        """Install a :class:`repro.chaos.FaultInjector` on this engine."""
        if self.chaos is not None:
            self.chaos.detach()
        self.chaos = injector

    def chaos_point(self, segment_id: Optional[int] = None) -> None:
        """Instrumented execution point: fire any due fault events."""
        if self.chaos is not None:
            self.chaos.tick(segment_id=segment_id, in_query=True)

    def chaos_progress(
        self, seconds: float, segment_id: Optional[int] = None
    ) -> None:
        """Advance the chaos clock by completed simulated work."""
        if self.chaos is not None:
            self.chaos.pulse(seconds, segment_id=segment_id, in_query=True)

    # ------------------------------------------------------------- processes
    def build_runtime(self) -> DistributedRuntime:
        """Stand up a fresh QD/QE process group for one execution attempt.

        Everything message-borne rides one :class:`SimNetwork` whose
        conditions mirror the cost model (same latency, zero jitter so
        same-sized dispatches deliver FIFO in segment order — execution
        order, and therefore the chaos clock, stays deterministic). One
        :class:`SegmentWorker` per segment, plus the master's own
        loopback worker for gang "1" slices. Workers are per-attempt:
        segments are stateless, so a restart simply spawns a new group
        against fresh failover assignments.
        """
        conditions = NetworkConditions(
            latency=self.cost_model.net_latency,
            jitter=0.0,
            bandwidth=self.cost_model.net_bw,
        )
        net = SimNetwork(conditions, seed=self.seed)
        bus = RpcBus(net)
        exchange = ExchangeFabric(net)
        runtime = DistributedRuntime(net, bus, exchange)
        services = WorkerServices(
            hdfs=self.hdfs,
            block_cache=self.block_cache,
            pxf=self.pxf,
            segments=self.segments,
            catalog_rows=lambda name, snapshot: catalog_relation_rows(
                self.catalog, name, snapshot
            ),
            sysview_rows=lambda name: system_view_rows(self.telemetry, name),
            chaos_point=self.chaos_point,
            chaos_progress=self.chaos_progress,
            num_segments=self.num_segments,
            metrics=self.metrics,
            detsan=self.detsan,
            is_cancelled=self.is_cancelled,
        )
        bus.metrics = self.metrics
        exchange.metrics = self.metrics
        for segment in self.segments:
            SegmentWorker(segment.segment_id, bus, exchange, services)
        SegmentWorker(QD_SEGMENT, bus, exchange, services)
        # The concurrent driver revives killed workers mid-batch (chaos
        # retries) by re-instantiating them against the same services.
        runtime.services = services
        self.metrics.counter("workers_spawned").inc(self.num_segments + 1)
        return runtime

    # --------------------------------------------------------------- helpers
    def segment_data_path(self, table: str, segment_id: int, segfile_id: int) -> str:
        generation = self._table_generation.get(table.lower(), 0)
        gen_part = f"/g{generation}" if generation else ""
        return f"{self.data_path}/{table}{gen_part}/seg{segment_id}/f{segfile_id}"


class Session:
    """One client session: query dispatcher (QD) state lives here."""

    def __init__(self, engine: Engine, role: str = "gpadmin"):
        self.engine = engine
        self.role = role
        self._txn: Optional[Transaction] = None
        self.default_isolation = IsolationLevel.READ_COMMITTED
        self.last_plan = None
        #: ``SET trace = on`` records a :class:`repro.obs.trace.
        #: QueryTrace` per dispatched statement on :attr:`tracer`.
        self.trace_enabled = False
        self.tracer = TraceCollector(engine.num_segments)
        #: ``SET resource_queue = name`` routes this session's queries
        #: through a specific queue instead of the role's default.
        self._queue_override: Optional[str] = None
        #: ``SET statement_timeout = <simulated seconds>``: a SELECT
        #: whose composed elapsed time crosses this is cancelled with
        #: :class:`~repro.errors.QueryCanceled`. 0.0 disables.
        self.statement_timeout = 0.0

    # ------------------------------------------------------------ public api
    def execute(self, sql: str, params: Sequence[object] = ()) -> QueryResult:
        """Execute a statement (or several, returning the last result)."""
        statements = parse_sql(sql)
        if not statements:
            raise SqlError("empty statement")
        result: Optional[QueryResult] = None
        for stmt in statements:
            result = self._execute_statement(stmt)
        # Workload repository: every serially-executed statement lands
        # in pg_stat_statements under its normalized fingerprint.
        self.engine.telemetry.record_statement(sql, result)
        return result

    def query(self, sql: str) -> List[tuple]:
        """Convenience: execute and return rows only."""
        return self.execute(sql).rows

    def cancel(self, query_id: int) -> None:
        """Cancel an in-flight statement by its engine-wide query id
        (the pg_cancel_backend stand-in — any session may cancel any
        statement). No-op for unknown or already-finished ids."""
        self.engine.cancel_query(query_id)

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and self._txn.state == "active"

    # ------------------------------------------------------------- dispatch
    def _execute_statement(self, stmt: ast.Statement) -> QueryResult:
        if isinstance(stmt, ast.BeginStmt):
            return self._begin(stmt)
        if isinstance(stmt, ast.CommitStmt):
            return self._commit()
        if isinstance(stmt, ast.RollbackStmt):
            return self._rollback()
        if isinstance(stmt, ast.SetStmt):
            return self._set(stmt)

        engine = self.engine
        metrics_before = engine.metrics.snapshot()
        wal_before = len(engine.txns.wal)
        implicit = not self.in_transaction
        txn = self._txn if self.in_transaction else self.engine.txns.begin(
            self.default_isolation
        )
        try:
            result = self._run_in_txn(stmt, txn)
        except Exception:
            self.engine.txns.abort(txn)
            if not implicit:
                self._txn = None
            raise
        if implicit:
            self.engine.txns.commit(txn)
        # Per-statement attribution by snapshot diff: everything the
        # cluster counted while this statement ran (including its WAL
        # records and commit) lands on the result.
        engine.metrics.counter("statements").inc()
        wal_delta = len(engine.txns.wal) - wal_before
        if wal_delta:
            engine.metrics.counter("wal_records").inc(wal_delta)
        result.metrics = engine.metrics.snapshot().diff(metrics_before)
        return result

    def _run_in_txn(self, stmt: ast.Statement, txn: Transaction) -> QueryResult:
        if isinstance(stmt, ast.SelectStmt):
            return self._select(stmt, txn)
        if isinstance(stmt, ast.InsertStmt):
            return self._insert(stmt, txn)
        if isinstance(stmt, ast.CreateTableStmt):
            return self._create_table(stmt, txn)
        if isinstance(stmt, ast.CreateViewStmt):
            return self._create_view(stmt, txn)
        if isinstance(stmt, ast.CreateExternalTableStmt):
            return self._create_external_table(stmt, txn)
        if isinstance(stmt, ast.DropStmt):
            return self._drop(stmt, txn)
        if isinstance(stmt, ast.AnalyzeStmt):
            return self._analyze(stmt, txn)
        if isinstance(stmt, ast.ExplainStmt):
            return self._explain(stmt, txn)
        if isinstance(stmt, ast.TruncateStmt):
            return self._truncate(stmt, txn)
        if isinstance(stmt, ast.CopyStmt):
            return self._copy(stmt, txn)
        if isinstance(stmt, ast.VacuumStmt):
            return self._vacuum(stmt, txn)
        if isinstance(stmt, ast.AlterTableStmt):
            return self._alter_table(stmt, txn)
        if isinstance(stmt, ast.CreateRoleStmt):
            self._require_superuser("CREATE ROLE")
            self.engine.security.create_role(
                stmt.name, superuser=stmt.superuser,
                resource_queue=stmt.resource_queue,
            )
            return _ok("CREATE ROLE")
        if isinstance(stmt, ast.DropRoleStmt):
            self._require_superuser("DROP ROLE")
            self.engine.security.drop_role(stmt.name)
            return _ok("DROP ROLE")
        if isinstance(stmt, ast.AlterRoleStmt):
            self._require_superuser("ALTER ROLE")
            if stmt.resource_queue:
                self.engine.security.set_role_queue(stmt.name, stmt.resource_queue)
            return _ok("ALTER ROLE")
        if isinstance(stmt, ast.CreateResourceQueueStmt):
            self._require_superuser("CREATE RESOURCE QUEUE")
            options = {k.lower(): v for k, v in stmt.options.items()}
            self.engine.security.create_queue(
                stmt.name,
                active_statements=int(options.get("active_statements", 20)),
                memory_limit=float(options.get("memory_limit", 8e9)),
                priority=int(options.get("priority", 0)),
            )
            return _ok("CREATE RESOURCE QUEUE")
        if isinstance(stmt, ast.DropResourceQueueStmt):
            self._require_superuser("DROP RESOURCE QUEUE")
            self.engine.security.drop_queue(stmt.name)
            return _ok("DROP RESOURCE QUEUE")
        if isinstance(stmt, ast.GrantStmt):
            self._check_privilege("all", stmt.relation, txn)
            if stmt.revoke:
                self.engine.security.revoke(stmt.privilege, stmt.relation, stmt.role)
                return _ok("REVOKE")
            self.engine.security.grant(stmt.privilege, stmt.relation, stmt.role)
            return _ok("GRANT")
        raise SqlError(f"unsupported statement {type(stmt).__name__}")

    # ------------------------------------------------------------- txn verbs
    def _begin(self, stmt: ast.BeginStmt) -> QueryResult:
        if self.in_transaction:
            raise TransactionError("already in a transaction")
        isolation = (
            IsolationLevel.parse(stmt.isolation)
            if stmt.isolation
            else self.default_isolation
        )
        self._txn = self.engine.txns.begin(isolation)
        return _ok("BEGIN")

    def _commit(self) -> QueryResult:
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        self.engine.txns.commit(self._txn)
        self._txn = None
        return _ok("COMMIT")

    def _rollback(self) -> QueryResult:
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        self.engine.txns.abort(self._txn)
        self._txn = None
        return _ok("ROLLBACK")

    def _set(self, stmt: ast.SetStmt) -> QueryResult:
        if stmt.name == "transaction_isolation":
            self.default_isolation = IsolationLevel.parse(stmt.value)
            return _ok("SET")
        if stmt.name == "role":
            self.engine.security.role(stmt.value)  # must exist
            self.role = stmt.value.lower()
            return _ok("SET")
        if stmt.name == "trace":
            self.trace_enabled = str(stmt.value).lower() in (
                "on", "true", "1", "yes",
            )
            return _ok("SET")
        if stmt.name == "resource_queue":
            value = str(stmt.value).lower()
            if value in ("default", ""):
                self._queue_override = None
                return _ok("SET")
            if value not in self.engine.security.queues:
                raise CatalogError(
                    f"resource queue {value!r} does not exist"
                )
            self._queue_override = value
            return _ok("SET")
        if stmt.name == "statement_timeout":
            value = str(stmt.value).lower()
            if value in ("off", "0", ""):
                self.statement_timeout = 0.0
                return _ok("SET")
            try:
                seconds = float(value)
            except ValueError:
                raise SqlError(
                    f"invalid statement_timeout value {stmt.value!r}"
                ) from None
            if seconds < 0:
                raise SqlError("statement_timeout may not be negative")
            self.statement_timeout = seconds
            return _ok("SET")
        return _ok("SET")  # other GUCs are accepted and ignored

    # ------------------------------------------------------------- security
    def _require_superuser(self, action: str) -> None:
        if not self.engine.security.role(self.role).superuser:
            raise PermissionDenied(f"{action} requires a superuser role")

    def _check_privilege(self, privilege: str, relation: str, txn) -> None:
        """Owner and superuser are always allowed; else consult grants."""
        security = self.engine.security
        if security.role(self.role).superuser:
            return
        snapshot = txn.statement_snapshot()
        rel = self.engine.catalog.lookup_relation(relation, snapshot)
        if rel is not None and rel.get("owner") == self.role:
            return
        security.check(self.role, privilege, relation)

    # ---------------------------------------------------------------- SELECT
    def _select(self, stmt: ast.SelectStmt, txn: Transaction) -> QueryResult:
        engine = self.engine
        snapshot = txn.statement_snapshot()
        analyzer = Analyzer(_CatalogAdapter(engine.catalog, snapshot))
        query = analyzer.analyze(stmt)
        for name in _tables_of(query):
            if name in CATALOG_RELATION_COLUMNS or name in SYSTEM_VIEW_COLUMNS:
                continue  # catalog/system-view reads are unlocked
            txn.lock(f"rel:{name}", LockMode.ACCESS_SHARE)
            self._check_privilege("select", name, txn)
        plan = self._plan(query, snapshot)
        queue = self._resource_queue()
        queue.admit()
        try:
            result = self._dispatch_and_execute(plan, snapshot, txn)
        finally:
            queue.release()
        self.last_plan = result.plan
        return result

    def prepare_select(self, sql: str) -> Optional["PreparedSelect"]:
        """Front-half of one SELECT for the event-driven concurrent
        driver: parse, analyze, lock, plan, and allocate the query id
        and trace — without dispatching anything.

        Returns a :class:`PreparedSelect` whose plan the driver feeds
        to the shared runtime wave-by-wave as scheduler events; the
        statement's implicit transaction stays open until the driver
        calls :meth:`PreparedSelect.finish` (or :meth:`~PreparedSelect.
        fail`). Non-SELECT statements (and multi-statement strings)
        return None — the driver executes those synchronously through
        :meth:`execute`.
        """
        statements = parse_sql(sql)
        if len(statements) != 1 or not isinstance(statements[0], ast.SelectStmt):
            return None
        stmt = statements[0]
        engine = self.engine
        metrics_before = engine.metrics.snapshot()
        wal_before = len(engine.txns.wal)
        txn = engine.txns.begin(self.default_isolation)
        try:
            snapshot = txn.statement_snapshot()
            analyzer = Analyzer(_CatalogAdapter(engine.catalog, snapshot))
            query = analyzer.analyze(stmt)
            for name in _tables_of(query):
                if (
                    name in CATALOG_RELATION_COLUMNS
                    or name in SYSTEM_VIEW_COLUMNS
                ):
                    continue  # catalog/system-view reads are unlocked
                txn.lock(f"rel:{name}", LockMode.ACCESS_SHARE)
                self._check_privilege("select", name, txn)
            plan = self._plan(query, snapshot)
            queue = self._resource_queue()
            query_id = next(engine._query_ids)
            trace = (
                self.tracer.begin_query(query_id=query_id)
                if self.trace_enabled
                else None
            )
            sdp = build_self_described_plan(plan, engine.catalog, snapshot)
            ctx = ExecutionContext(
                num_segments=engine.num_segments,
                cost_model=engine.cost_model,
                interconnect=engine.interconnect,
                pipelined=engine.pipelined,
                work_mem=min(engine.work_mem, queue.memory_limit),
                executor_mode=engine.executor_mode,
                metadata_dispatch=engine.metadata_dispatch,
                trace=trace,
                kernel_cache=engine.kernel_cache,
                query_id=query_id,
            )
        except Exception:
            engine.txns.abort(txn)
            raise
        return PreparedSelect(
            session=self,
            txn=txn,
            plan=plan,
            sdp=sdp,
            ctx=ctx,
            sql=sql,
            query_id=query_id,
            trace=trace,
            queue_name=queue.name,
            memory=min(engine.work_mem, queue.memory_limit),
            statement_timeout=self.statement_timeout,
            metrics_before=metrics_before,
            wal_before=wal_before,
        )

    def _plan(self, query: LogicalQuery, snapshot: Snapshot):
        engine = self.engine
        stats: Dict[str, TableStats] = {}
        for name in _tables_of(query):
            table_stats = engine.catalog.get_stats(name, snapshot)
            if table_stats is not None:
                stats[name] = table_stats
        planner = Planner(
            num_segments=engine.num_segments,
            stats=stats,
            options=engine.planner_options,
            partition_children=self._partition_children(snapshot),
        )
        return planner.plan(query)

    def _resource_queue(self):
        """The session's admission queue: the ``SET resource_queue``
        override when present, else the role's assigned queue."""
        if self._queue_override is not None:
            return self.engine.security.queues[self._queue_override]
        return self.engine.security.queue_for(self.role)

    def _partition_children(self, snapshot: Snapshot) -> Dict[str, List]:
        mapping: Dict[str, List] = {}
        for relation in self.engine.catalog.relations(snapshot):
            if relation.get("children"):
                mapping[relation["name"]] = relation["children"]
        return mapping

    def _dispatch_and_execute(
        self,
        plan,
        snapshot: Snapshot,
        txn: Transaction,
        force_trace: bool = False,
    ) -> QueryResult:
        """Dispatch with bounded query restart (paper Section 2.6).

        Stateless segments make restart cheaper than recovery: when a
        segment dies mid-execution (or a block is transiently
        unreadable) the dispatcher backs off on the simulated clock,
        re-runs fault detection so the session picks up fresh failover
        assignments, and re-dispatches the same plan. After
        ``max_query_retries`` failed attempts the query fails with a
        clean :class:`QueryRetriesExhausted`. Master failover
        (:class:`MasterUnavailable`) is never retried here — the
        transaction died with the master, so the *statement* fails and
        the client restarts it against the promoted standby.
        """
        engine = self.engine
        query_id = next(engine._query_ids)
        trace = (
            self.tracer.begin_query(query_id=query_id)
            if (self.trace_enabled or force_trace)
            else None
        )
        retries = 0
        backoff_seconds = 0.0
        engine.telemetry.serial_begin(query_id, self._resource_queue().name)
        try:
            while True:
                engine.telemetry.serial_attempt(query_id, retries + 1)
                if engine.run_fault_detection():
                    # Sessions randomly fail down segments over to live
                    # hosts.
                    engine.fault_detector.assign_failover()
                try:
                    result = self._execute_attempt(
                        plan, snapshot, txn, trace, query_id=query_id
                    )
                except (SegmentDown, HdfsError) as exc:
                    if trace is not None:
                        # Close outstanding DISPATCHes of the failed
                        # attempt (idempotent: the runtime's own abort
                        # path may have closed them already; a
                        # _gather-raised SegmentDown reaches only this
                        # handler).
                        trace.attempt_aborted()
                    retries += 1
                    if retries > engine.max_query_retries:
                        raise QueryRetriesExhausted(
                            f"query failed after {engine.max_query_retries} "
                            f"restarts: {exc}"
                        ) from exc
                    backoff_seconds += engine.retry_backoff * (2 ** (retries - 1))
                    if engine.metrics is not None:
                        engine.metrics.counter("query_retries").inc()
                    continue
                result.retries = retries
                result.cost.seconds += backoff_seconds
                if trace is not None:
                    trace.finalize(result)
                    result.trace = trace
                return result
        finally:
            engine.telemetry.serial_end(query_id)
            # A pending cancel is consumed with the statement — a later
            # query must never inherit it.
            engine._cancel_requests.discard(query_id)

    def _execute_attempt(
        self, plan, snapshot: Snapshot, txn: Transaction, trace=None,
        query_id: int = 0,
    ) -> QueryResult:
        """Run one dispatch attempt on a fresh QD/QE process group."""
        engine = self.engine
        sdp = build_self_described_plan(plan, engine.catalog, snapshot)
        queue = self._resource_queue()
        ctx = ExecutionContext(
            num_segments=engine.num_segments,
            cost_model=engine.cost_model,
            interconnect=engine.interconnect,
            pipelined=engine.pipelined,
            work_mem=min(engine.work_mem, queue.memory_limit),
            executor_mode=engine.executor_mode,
            metadata_dispatch=engine.metadata_dispatch,
            trace=trace,
            kernel_cache=engine.kernel_cache,
            query_id=query_id,
        )
        runtime = engine.build_runtime()
        if trace is not None:
            trace.begin_attempt()
            runtime.bus.trace = trace
            runtime.exchange.trace = trace
        previous_runtime = engine._active_runtime
        engine._active_runtime = runtime
        try:
            return runtime.execute(plan, sdp, ctx, check=self._wave_check)
        finally:
            engine._active_runtime = previous_runtime
            net = runtime.net
            engine.metrics.counter(
                "datagrams_delivered", mode=engine.interconnect
            ).inc(net.delivered)
            if net.dropped:
                engine.metrics.counter(
                    "datagrams_dropped", mode=engine.interconnect
                ).inc(net.dropped)

    def _wave_check(self, dispatch, wave_index: int) -> None:
        """Serial-path cancellation point, run after each wave settles.

        Raises :class:`QueryCanceled` when the statement has a pending
        cancel request, or when ``statement_timeout`` is set and the
        deterministic elapsed time (partial-DAG makespan plus master
        charges) has crossed it. The runtime's abort path then closes
        the attempt cleanly.
        """
        query_id = dispatch.ctx.query_id
        if self.engine.is_cancelled(query_id):
            raise QueryCanceled(f"query {query_id} cancelled by request")
        timeout = self.statement_timeout
        if timeout > 0 and dispatch.elapsed_seconds(wave_index) > timeout:
            raise QueryCanceled(
                f"query {query_id} cancelled: statement_timeout of "
                f"{timeout}s exceeded"
            )

    # ---------------------------------------------------------------- INSERT
    def _insert(self, stmt: ast.InsertStmt, txn: Transaction) -> QueryResult:
        engine = self.engine
        snapshot = txn.statement_snapshot()
        relation = engine.catalog.lookup_relation(stmt.table, snapshot)
        if relation is None:
            raise UndefinedObject(f"relation {stmt.table!r} does not exist")
        schema = relation["schema"]
        txn.lock(f"rel:{schema.name}", LockMode.ROW_EXCLUSIVE)
        self._check_privilege("insert", schema.name, txn)

        if stmt.select is not None:
            inner = self._select(stmt.select, txn)
            raw_rows = inner.rows
        else:
            raw_rows = [
                tuple(compile_expr_value(expr) for expr in row) for row in stmt.rows
            ]
        rows = [self._shape_row(schema, stmt.columns, row) for row in raw_rows]

        if relation["kind"] == "external":
            # WRITABLE external tables export through PXF (Section 6).
            pxf_info = relation["pxf"]
            if not pxf_info.get("writable"):
                raise SemanticError(
                    f"cannot insert into READABLE external table {schema.name!r}"
                )
            acc = CostAccumulator(engine.cost_model)
            count = engine.pxf.write(pxf_info, schema, rows, acc)
            result = _ok(f"INSERT 0 {count}")
            result.cost.seconds += acc.seconds
            return result
        if relation["kind"] == "view":
            raise SemanticError("cannot insert into a view")

        acc = CostAccumulator(engine.cost_model)
        count = self.load_rows(
            schema.name, rows, txn=txn, snapshot=snapshot, acc=acc
        )
        result = _ok(f"INSERT 0 {count}")
        result.cost = QueryCost.from_accumulator(acc)
        return result

    def _shape_row(
        self, schema: TableSchema, columns: Optional[List[str]], row: tuple
    ) -> tuple:
        if columns is None:
            return schema.coerce_row(row)
        if len(columns) != len(row):
            raise SemanticError("INSERT column/value count mismatch")
        full: List[object] = [None] * len(schema.columns)
        for name, value in zip(columns, row):
            full[schema.column_index(name)] = value
        return schema.coerce_row(full)

    def load_rows(
        self,
        table: str,
        rows: Sequence[tuple],
        txn: Optional[Transaction] = None,
        snapshot: Optional[Snapshot] = None,
        acc: Optional[CostAccumulator] = None,
    ) -> int:
        """Bulk-load coerced rows (the ETL / COPY path). Transactional.

        INSERT and COPY always pass an ``acc`` so the written bytes are
        charged to the statement's simulated cost; bare ETL callers may
        omit it (their loads are setup, not a measured statement)."""
        engine = self.engine
        own_txn = txn is None
        if own_txn:
            txn = engine.txns.begin(self.default_isolation)
            snapshot = txn.statement_snapshot()
        assert snapshot is not None
        try:
            schema = engine.catalog.get_schema(table, snapshot)
            rows = [schema.coerce_row(r) for r in rows]
            targets = self._route_partitions(schema, rows, snapshot)
            total = 0
            for child_schema, child_rows in targets:
                total += self._write_table_rows(
                    child_schema, child_rows, txn, snapshot, acc=acc
                )
            if own_txn:
                engine.txns.commit(txn)
            return total
        except Exception:
            if own_txn:
                engine.txns.abort(txn)
            raise

    def _route_partitions(
        self, schema: TableSchema, rows: Sequence[tuple], snapshot: Snapshot
    ) -> List[Tuple[TableSchema, List[tuple]]]:
        spec = schema.partition_spec
        if spec is None:
            return [(schema, list(rows))]
        children = {
            partition.name: child_name
            for child_name, partition in self.engine.catalog.lookup_relation(
                schema.name, snapshot
            )["children"]
        }
        part_col = schema.column_index(spec.column)
        buckets: Dict[str, List[tuple]] = {}
        for row in rows:
            partition = spec.route(row[part_col])
            if partition is None:
                raise ExecutorError(
                    f"no partition of {schema.name} holds {row[part_col]!r}"
                )
            buckets.setdefault(partition.name, []).append(row)
        out = []
        for part_name, child_rows in buckets.items():
            child_schema = self.engine.catalog.get_schema(
                children[part_name], snapshot
            )
            out.append((child_schema, child_rows))
        return out

    def _write_table_rows(
        self,
        schema: TableSchema,
        rows: List[tuple],
        txn: Transaction,
        snapshot: Snapshot,
        acc: Optional[CostAccumulator] = None,
    ) -> int:
        engine = self.engine
        num_segments = engine.num_segments
        buckets: Dict[int, List[tuple]] = {}
        if schema.distribution.is_hash:
            for row in rows:
                buckets.setdefault(
                    schema.hash_row(row, num_segments), []
                ).append(row)
        else:
            start = next(engine._load_rng)
            for i, row in enumerate(rows):
                buckets.setdefault((start + i) % num_segments, []).append(row)

        from repro.txn.manager import AppendedFile

        lane = engine.txns.segfiles.acquire(schema.name, txn.xid)
        fmt = get_format(schema.storage_format)
        for segment_id, segment_rows in sorted(buckets.items()):
            segment = engine.segments[segment_id]
            client = segment.client(engine.hdfs)
            base_path = engine.segment_data_path(schema.name, segment_id, lane)
            existing = [
                f
                for f in engine.catalog.segfiles(schema.name, snapshot, segment_id)
                if f["segfile_id"] == lane
            ]
            if existing:
                prev = existing[0]["paths"]
                # Truncate garbage left by aborted appends before writing.
                for path, logical in prev.items():
                    if client.exists(path):
                        physical = client.file_status(path).length
                        if physical > logical:
                            client.truncate(path, logical)
                result = fmt.write(
                    client,
                    base_path,
                    segment_rows,
                    schema,
                    schema.compression,
                    append=True,
                )
                self._charge_write(
                    acc,
                    schema,
                    result,
                    sum(
                        length - prev.get(path, 0)
                        for path, length in result.paths.items()
                    ),
                )
                for path, prev_len in prev.items():
                    txn.record_append(
                        AppendedFile(
                            table=schema.name,
                            segment_id=segment_id,
                            segfile_id=lane,
                            path=path,
                            previous_length=prev_len,
                            truncate=client.truncate,
                        )
                    )
                engine.catalog.update_segfile(
                    snapshot,
                    schema.name,
                    segment_id,
                    lane,
                    {
                        "paths": dict(result.paths),
                        "uncompressed_length": existing[0]["uncompressed_length"]
                        + result.uncompressed_bytes,
                        "tupcount": existing[0]["tupcount"] + result.tupcount,
                    },
                    txn.xid,
                )
            else:
                result = fmt.write(
                    client,
                    base_path,
                    segment_rows,
                    schema,
                    schema.compression,
                    append=False,
                )
                self._charge_write(
                    acc, schema, result, sum(result.paths.values())
                )
                for path in result.paths:
                    txn.record_append(
                        AppendedFile(
                            table=schema.name,
                            segment_id=segment_id,
                            segfile_id=lane,
                            path=path,
                            previous_length=0,
                            truncate=lambda p, n, c=client: (
                                c.truncate(p, n) if c.exists(p) else None
                            ),
                        )
                    )
                engine.catalog.register_segfile(
                    schema.name,
                    segment_id,
                    lane,
                    dict(result.paths),
                    txn.xid,
                    uncompressed_length=result.uncompressed_bytes,
                    tupcount=result.tupcount,
                )
        return len(rows)

    def _charge_write(
        self,
        acc: Optional[CostAccumulator],
        schema: TableSchema,
        result: "WriteResult",
        written_bytes: int,
    ) -> None:
        """Charge one segfile write to the statement's accumulator:
        replicated disk bytes, per-byte encode CPU, per-tuple CPU. The
        R3 cost-conformance lint keys the write path off this call."""
        if acc is None:
            return
        acc.disk_write(max(written_bytes, 0), replicated=True)
        acc.cpu_bytes(
            result.uncompressed_bytes, self.engine.cost_model.cpu_format_byte
        )
        acc.cpu_tuples(result.tupcount, ncolumns=len(schema.columns))
        self.engine.metrics.counter(
            "bytes_written", format=schema.storage_format
        ).inc(max(written_bytes, 0))

    def _vacuum(self, stmt: ast.VacuumStmt, txn: Transaction) -> QueryResult:
        """Reclaim physical garbage: truncate segment files back to their
        committed logical lengths (aborted appends) and drop catalog row
        versions no live snapshot can see."""
        engine = self.engine
        snapshot = txn.statement_snapshot()
        if stmt.table is not None:
            names = [stmt.table.lower()]
            relation = engine.catalog.lookup_relation(stmt.table, snapshot)
            if relation is None:
                raise UndefinedObject(f"relation {stmt.table!r} does not exist")
            names.extend(c for c, _ in relation.get("children", []))
        else:
            names = [
                r["name"]
                for r in engine.catalog.relations(snapshot)
                if r["kind"] == "table"
            ]
        reclaimed = 0
        for name in names:
            for segfile in engine.catalog.segfiles(name, snapshot):
                client = engine.segments[segfile["segment_id"]].client(engine.hdfs)
                for path, logical in segfile["paths"].items():
                    if not client.exists(path):
                        continue
                    physical = client.file_status(path).length
                    if physical > logical:
                        client.truncate(path, logical)
                        reclaimed += physical - logical
        dead = 0
        if stmt.table is None:
            horizon = engine.txns.xids.snapshot(txn.xid)
            for catalog_table in engine.catalog.tables.values():
                dead += catalog_table.vacuum(horizon)
        return _ok(f"VACUUM (reclaimed {reclaimed} bytes, {dead} dead catalog rows)")

    def _copy(self, stmt: ast.CopyStmt, txn: Transaction) -> QueryResult:
        """COPY: bulk load from / unload to delimited text on HDFS —
        the ETL path of paper Section 2.1's interface story."""
        from repro.pxf.files import TextResolver, TextWriter

        engine = self.engine
        snapshot = txn.statement_snapshot()
        schema = engine.catalog.get_schema(stmt.table, snapshot)
        path = stmt.path if stmt.path.startswith("/") else "/" + stmt.path
        if stmt.direction == "from":
            self._check_privilege("insert", schema.name, txn)
            txn.lock(f"rel:{schema.name}", LockMode.ROW_EXCLUSIVE)
            resolver = TextResolver(stmt.delimiter)
            acc = CostAccumulator(engine.cost_model)
            raw = engine.hdfs.client().read_file(path).decode("utf-8")
            acc.disk_read(len(raw))
            rows = [
                resolver.resolve(line, schema)
                for line in raw.splitlines()
                if line
            ]
            count = self.load_rows(
                schema.name, rows, txn=txn, snapshot=snapshot, acc=acc
            )
            result = _ok(f"COPY {count}")
            result.cost = QueryCost.from_accumulator(acc)
            return result
        self._check_privilege("select", schema.name, txn)
        txn.lock(f"rel:{schema.name}", LockMode.ACCESS_SHARE)
        rows = list(self._read_all_rows(schema.name, snapshot))
        relation = engine.catalog.lookup_relation(schema.name, snapshot)
        for child_name, _p in relation.get("children", []):
            rows.extend(self._read_all_rows(child_name, snapshot))
        writer = TextWriter(engine.hdfs, stmt.delimiter)
        acc = CostAccumulator(engine.cost_model)
        unloaded = writer.write(path, rows, schema)
        acc.disk_write(unloaded, replicated=True)
        acc.cpu_tuples(len(rows), ncolumns=len(schema.columns))
        result = _ok(f"COPY {len(rows)}")
        result.cost = QueryCost.from_accumulator(acc)
        return result

    # ------------------------------------------------------------------- DDL
    def _create_table(self, stmt: ast.CreateTableStmt, txn: Transaction) -> QueryResult:
        schema = _schema_from_ast(stmt)
        snapshot = txn.statement_snapshot()
        txn.lock(f"rel:{schema.name}", LockMode.ACCESS_EXCLUSIVE)
        children: List[Tuple[str, Partition]] = []
        if schema.partition_spec is not None:
            for partition in schema.partition_spec.partitions:
                child = schema.child_schema(partition)
                self.engine.catalog.create_table(
                    child, txn.xid, snapshot, owner=self.role
                )
                self.engine.catalog.add_dependency(child.name, schema.name, txn.xid)
                children.append((child.name, partition))
        self.engine.catalog.create_table(
            schema, txn.xid, snapshot, children=children, owner=self.role
        )
        return _ok("CREATE TABLE")

    def _create_view(self, stmt: ast.CreateViewStmt, txn: Transaction) -> QueryResult:
        snapshot = txn.statement_snapshot()
        analyzer = Analyzer(_CatalogAdapter(self.engine.catalog, snapshot))
        analyzed = analyzer.analyze(stmt.query)  # validates now
        schema = TableSchema(
            name=stmt.name,
            columns=[
                Column(name or f"column{i}", DataType.parse("text"))
                for i, name in enumerate(analyzed.output_names)
            ],
            distribution=Distribution.random(),
        )
        self.engine.catalog.create_table(
            schema, txn.xid, snapshot, kind="view", view_def=stmt.query,
            owner=self.role,
        )
        for name in _tables_of(analyzed):
            self.engine.catalog.add_dependency(stmt.name, name, txn.xid)
        return _ok("CREATE VIEW")

    def _create_external_table(
        self, stmt: ast.CreateExternalTableStmt, txn: Transaction
    ) -> QueryResult:
        snapshot = txn.statement_snapshot()
        schema = TableSchema(
            name=stmt.name,
            columns=[
                Column(c.name, DataType.parse(c.type_name), c.not_null)
                for c in stmt.columns
            ],
            distribution=Distribution.random(),
        )
        pxf_info = self.engine.pxf.parse_location(
            stmt.location, stmt.format_name, stmt.format_options
        )
        pxf_info["writable"] = stmt.writable
        self.engine.catalog.create_table(
            schema, txn.xid, snapshot, kind="external", pxf=pxf_info,
            owner=self.role,
        )
        return _ok("CREATE EXTERNAL TABLE")

    def _drop(self, stmt: ast.DropStmt, txn: Transaction) -> QueryResult:
        engine = self.engine
        snapshot = txn.statement_snapshot()
        name = stmt.name.lower()
        relation = engine.catalog.lookup_relation(name, snapshot)
        if relation is None:
            if stmt.if_exists:
                return _ok(f"DROP (skipped, {name} does not exist)")
            raise UndefinedObject(f"relation {name!r} does not exist")
        txn.lock(f"rel:{name}", LockMode.ACCESS_EXCLUSIVE)
        self._check_privilege("all", name, txn)
        dependents = engine.catalog.dependents_of(name, snapshot)
        child_names = {c for c, _ in relation.get("children", [])}
        blocking = [d for d in dependents if d not in child_names]
        if blocking:
            raise SemanticError(
                f"cannot drop {name}: {', '.join(sorted(blocking))} depend on it"
            )
        for child_name, _partition in relation.get("children", []):
            engine.catalog.drop_table(child_name, txn.xid, snapshot)
            engine.txns.segfiles.drop_table(child_name)
        engine.catalog.drop_table(name, txn.xid, snapshot)
        engine.txns.segfiles.drop_table(name)
        return _ok(f"DROP {stmt.object_kind.upper()}")

    def _truncate(self, stmt: ast.TruncateStmt, txn: Transaction) -> QueryResult:
        engine = self.engine
        snapshot = txn.statement_snapshot()
        schema = engine.catalog.get_schema(stmt.table, txn.statement_snapshot())
        txn.lock(f"rel:{schema.name}", LockMode.ACCESS_EXCLUSIVE)
        names = [schema.name]
        relation = engine.catalog.lookup_relation(schema.name, snapshot)
        names.extend(c for c, _ in relation.get("children", []))
        for name in names:
            for segfile in engine.catalog.segfiles(name, snapshot):
                engine.catalog.update_segfile(
                    snapshot,
                    name,
                    segfile["segment_id"],
                    segfile["segfile_id"],
                    {
                        "paths": {p: 0 for p in segfile["paths"]},
                        "uncompressed_length": 0,
                        "tupcount": 0,
                    },
                    txn.xid,
                )
        return _ok("TRUNCATE TABLE")

    def _alter_table(self, stmt: ast.AlterTableStmt, txn: Transaction) -> QueryResult:
        """ALTER TABLE ... SET WITH (orientation=..., compresstype=...):
        online storage-model transformation — the feature the paper lists
        as "in product roadmap" (Section 2.5). Reads every committed row,
        rewrites it under the new physical design in a fresh path
        generation, and swaps the catalog entries transactionally (old
        physical files become garbage if the transaction commits, and the
        new ones if it aborts — either way the catalog stays consistent)."""
        engine = self.engine
        snapshot = txn.statement_snapshot()
        name = stmt.name.lower()
        relation = engine.catalog.lookup_relation(name, snapshot)
        if relation is None:
            raise UndefinedObject(f"relation {name!r} does not exist")
        if relation["kind"] != "table":
            raise SemanticError("ALTER TABLE SET WITH applies to tables only")
        txn.lock(f"rel:{name}", LockMode.ACCESS_EXCLUSIVE)
        self._check_privilege("all", name, txn)

        options = {k.lower(): str(v).lower() for k, v in stmt.options.items()}
        acc = CostAccumulator(engine.cost_model)
        targets = [(c, p) for c, p in relation.get("children", [])] or [(name, None)]
        for child_name, _partition in targets:
            child_rel = engine.catalog.lookup_relation(child_name, snapshot)
            old_schema: TableSchema = child_rel["schema"]
            new_schema = _apply_storage_options(old_schema, options)
            rows = list(self._read_all_rows(child_name, snapshot))
            # Retire the old physical design in the catalog...
            engine.catalog.table("gp_segfile").delete(
                snapshot, lambda r, n=child_name: r["table"] == n, txn.xid
            )
            engine.catalog.table("pg_class").update(
                snapshot,
                lambda r, n=child_name: r["name"] == n,
                {"schema": new_schema},
                txn.xid,
            )
            # ...and write the data back under a fresh path generation.
            engine._table_generation[child_name] = (
                engine._table_generation.get(child_name, 0) + 1
            )
            fresh_snapshot = txn.statement_snapshot()
            if rows:
                self._write_table_rows(
                    new_schema, rows, txn, fresh_snapshot, acc=acc
                )
        if relation.get("children"):
            parent_schema = _apply_storage_options(relation["schema"], options)
            engine.catalog.table("pg_class").update(
                snapshot,
                lambda r: r["name"] == name,
                {"schema": parent_schema},
                txn.xid,
            )
        result = _ok("ALTER TABLE")
        result.cost = QueryCost.from_accumulator(acc)
        return result

    # --------------------------------------------------------------- ANALYZE
    def _analyze(self, stmt: ast.AnalyzeStmt, txn: Transaction) -> QueryResult:
        snapshot = txn.statement_snapshot()
        if stmt.table is not None:
            names = [stmt.table.lower()]
        else:
            names = [
                r["name"]
                for r in self.engine.catalog.relations(snapshot)
                if r["kind"] == "table"
            ]
        for name in names:
            self.analyze_table(name, txn, snapshot)
        return _ok("ANALYZE")

    def analyze_table(
        self, name: str, txn: Transaction, snapshot: Snapshot
    ) -> TableStats:
        engine = self.engine
        relation = engine.catalog.lookup_relation(name, snapshot)
        if relation is None:
            raise UndefinedObject(f"relation {name!r} does not exist")
        if relation["kind"] == "external":
            stats = engine.pxf.analyze(relation["pxf"], relation["schema"])
            engine.catalog.set_stats(name, stats, txn.xid, snapshot)
            return stats
        children = relation.get("children", [])
        scan_names = [c for c, _ in children] or [name]
        rows: List[tuple] = []
        for scan_name in scan_names:
            rows.extend(self._read_all_rows(scan_name, snapshot))
        stats = TableStats.from_rows(
            rows, relation["schema"].column_names
        )
        engine.catalog.set_stats(name, stats, txn.xid, snapshot)
        return stats

    def _read_all_rows(self, name: str, snapshot: Snapshot) -> Iterator[tuple]:
        engine = self.engine
        schema = engine.catalog.get_schema(name, snapshot)
        fmt = get_format(schema.storage_format)
        for segfile in engine.catalog.segfiles(name, snapshot):
            segment = engine.segments[segfile["segment_id"]]
            client = segment.client(engine.hdfs)
            yield from fmt.scan(
                client,
                segfile["paths"],
                schema,
                schema.compression,
                cache=engine.block_cache,
            )

    # --------------------------------------------------------------- EXPLAIN
    def _explain(self, stmt: ast.ExplainStmt, txn: Transaction) -> QueryResult:
        if not isinstance(stmt.statement, ast.SelectStmt):
            raise SqlError("EXPLAIN supports SELECT only")
        snapshot = txn.statement_snapshot()
        analyzer = Analyzer(_CatalogAdapter(self.engine.catalog, snapshot))
        query = analyzer.analyze(stmt.statement)
        plan = self._plan(query, snapshot)
        self.last_plan = plan
        lines = plan.explain().splitlines()
        if stmt.analyze:
            # EXPLAIN ANALYZE: actually run the plan and annotate each
            # slice from its scheduler timeline — the composed finish
            # time on the event clock, rows moved, and the per-segment
            # task breakdown beneath it. VERBOSE additionally forces a
            # trace and appends per-operator rows/time and per-table
            # bytes/cache columns from the trace's spans.
            result = self._dispatch_and_execute(
                plan, snapshot, txn, force_trace=stmt.verbose
            )
            # Select the trace by this statement's query id — "latest
            # trace" would race with other sessions under concurrency.
            trace = self.tracer.for_query(result.query_id)
            if stmt.verbose and trace is not None:
                lines = plan.explain(
                    annotate=_trace_annotator(trace)
                ).splitlines()
            annotated = []
            for line in lines:
                annotated.append(line)
                if line.startswith("Slice "):
                    slice_id = int(line.split()[1])
                    timing = result.slices.get(slice_id)
                    if timing is not None:
                        annotated.append(
                            f"  (actual time={timing.finish:.4f}s, "
                            f"rows sent={timing.rows})"
                        )
                        if stmt.verbose:
                            gang = [
                                timing.tasks[seg].seconds
                                for seg in sorted(timing.tasks)
                                if seg != QD_SEGMENT
                            ]
                            if len(gang) >= 2:
                                # Skew attribution across the gang: how
                                # unevenly the slice's work landed.
                                annotated.append(
                                    f"  (skew: max={max(gang):.4f}s "
                                    f"mean={sum(gang) / len(gang):.4f}s "
                                    f"min={min(gang):.4f}s "
                                    f"across {len(gang)} tasks)"
                                )
                        for segment in sorted(timing.tasks):
                            task = timing.tasks[segment]
                            who = (
                                "QD"
                                if segment == QD_SEGMENT
                                else f"seg{segment}"
                            )
                            annotated.append(
                                f"    {who}: {task.seconds:.4f}s, "
                                f"{task.rows} rows, {task.bytes} bytes"
                            )
            annotated.append(
                f"Total: {result.cost.seconds:.4f}s simulated "
                f"(critical path {result.makespan:.4f}s + overhead "
                f"{result.overhead_seconds:.4f}s), "
                f"{len(result.rows)} rows, {result.cost.tuples} tuples "
                f"processed, {result.cost.net_bytes} bytes moved"
            )
            return QueryResult(
                rows=[(line,) for line in annotated],
                column_names=["QUERY PLAN"],
                cost=result.cost,
                plan=plan,
            )
        return QueryResult(
            rows=[(line,) for line in lines],
            column_names=["QUERY PLAN"],
            cost=QueryCost(seconds=self.engine.cost_model.query_setup),
            plan=plan,
        )


@dataclass
class PreparedSelect:
    """One SELECT's front-half, handed to the concurrent driver.

    Produced by :meth:`Session.prepare_select`. The statement's
    implicit transaction is already open and its locks held; the driver
    owns the back half — wave dispatch on the shared runtime as
    scheduler events — and must settle the statement through exactly
    one of :meth:`finish` (commit + per-statement metrics attribution +
    trace finalization) or :meth:`fail` (abort).
    """

    session: "Session"
    txn: Transaction
    plan: object
    sdp: object
    ctx: ExecutionContext
    #: Original statement text (pg_stat_statements fingerprinting).
    sql: str
    query_id: int
    trace: Optional[object]
    queue_name: str
    #: Admission memory ask: the session's work_mem clamped to the
    #: queue's limit (what ResourceQueueManager charges the slot).
    memory: float
    #: The session's ``statement_timeout`` at prepare time (0 = off).
    statement_timeout: float
    metrics_before: object
    wal_before: int
    settled: bool = False

    def finish(self, result: QueryResult) -> None:
        """Commit the statement and attribute its metrics and trace."""
        if self.settled:
            return
        self.settled = True
        engine = self.session.engine
        engine.txns.commit(self.txn)
        engine.metrics.counter("statements").inc()
        wal_delta = len(engine.txns.wal) - self.wal_before
        if wal_delta:
            engine.metrics.counter("wal_records").inc(wal_delta)
        result.metrics = engine.metrics.snapshot().diff(self.metrics_before)
        if self.trace is not None:
            self.trace.finalize(result)
            result.trace = self.trace
        engine.telemetry.record_statement(self.sql, result)
        self.session.last_plan = result.plan
        engine._cancel_requests.discard(self.query_id)

    def fail(self) -> None:
        """Abort the statement's transaction (error or cancellation)."""
        if self.settled:
            return
        self.settled = True
        engine = self.session.engine
        engine.txns.abort(self.txn)
        engine._cancel_requests.discard(self.query_id)


def _trace_annotator(trace):
    """Build the EXPLAIN (ANALYZE, VERBOSE) per-node annotation callback
    from a query trace: operator spans keyed by plan-node identity, plus
    storage-layer per-table read/cache aggregates for scans."""
    ops = trace.operator_stats()
    scans = trace.scan_stats()

    def annotate(node) -> Optional[str]:
        parts: List[str] = []
        stats = ops.get(id(node))
        if stats is not None:
            parts.append(
                f"(actual rows={stats['rows']} calls={stats['calls']} "
                f"time={stats['acc_seconds']:.4f}s)"
            )
        table = getattr(getattr(node, "table", None), "table_name", None)
        if table is not None and table in scans:
            scan = scans[table]
            lookups = scan["cache_hits"] + scan["cache_misses"]
            parts.append(
                f"(read={scan['read_bytes']}B remote={scan['remote_bytes']}B "
                f"cache hits={scan['cache_hits']}/{lookups})"
            )
        return " ".join(parts) if parts else None

    return annotate


# ----------------------------------------------------------------- adapters
class _CatalogAdapter:
    """Analyzer-facing view of the catalog under one snapshot."""

    def __init__(self, catalog: CatalogService, snapshot: Snapshot):
        self.catalog = catalog
        self.snapshot = snapshot

    def resolve(self, name: str) -> RelationInfo:
        if name.lower() in CATALOG_RELATION_COLUMNS:
            # Standard SQL over the system catalog (paper Section 2.2).
            return RelationInfo(
                kind="table", schema=catalog_relation_schema(name.lower())
            )
        if name.lower() in SYSTEM_VIEW_COLUMNS:
            # System views: master-only telemetry relations, queryable
            # with ordinary SQL just like the catalog projections.
            return RelationInfo(
                kind="table", schema=system_view_schema(name.lower())
            )
        relation = self.catalog.lookup_relation(name, self.snapshot)
        if relation is None:
            raise SemanticError(f"relation {name!r} does not exist")
        if relation["kind"] == "view":
            return RelationInfo(kind="view", view_query=relation["view_def"])
        if relation["kind"] == "external":
            return RelationInfo(
                kind="external", schema=relation["schema"], pxf=relation["pxf"]
            )
        return RelationInfo(kind="table", schema=relation["schema"])


def _tables_of(query: LogicalQuery) -> List[str]:
    """All base-table names referenced by a logical query (recursively)."""
    names: List[str] = []

    def visit(q: LogicalQuery) -> None:
        for rel in q.rels:
            if isinstance(rel.source, DerivedSource):
                visit(rel.source.query)
            else:
                names.append(rel.source.table_name)
        for init in q.init_plans:
            visit(init)

    visit(query)
    return sorted(set(names))


def compile_expr_value(expr: ast.Expr) -> object:
    """Evaluate a constant AST expression (INSERT ... VALUES)."""
    from repro.planner.analyzer import Analyzer

    bound = Analyzer(_EmptyCatalog())._expr(expr, [], allow_aggregates=False)
    return compile_expr(bound, [])(())


class _EmptyCatalog:
    def resolve(self, name: str):  # pragma: no cover - constants only
        raise SemanticError(f"relation {name!r} does not exist")


def _ok(message: str) -> QueryResult:
    return QueryResult(
        rows=[], column_names=[], cost=QueryCost(seconds=0.0), message=message
    )


# --------------------------------------------------------------- DDL helpers
def _apply_storage_options(schema: TableSchema, options: dict) -> TableSchema:
    """New TableSchema with WITH-clause storage options applied."""
    import dataclasses

    storage_format = schema.storage_format
    compression = schema.compression
    if "orientation" in options:
        mapping = {"row": "ao", "column": "co", "parquet": "parquet"}
        if options["orientation"] not in mapping:
            raise SemanticError(f"unknown orientation {options['orientation']!r}")
        storage_format = mapping[options["orientation"]]
    if "compresstype" in options:
        compresstype = options["compresstype"]
        level = options.get("compresslevel")
        if compresstype in ("zlib", "gzip"):
            compression = f"{compresstype}{level or 1}"
        else:
            compression = compresstype
    elif "compresslevel" in options and compression[:-1] in ("zlib", "gzip"):
        compression = f"{compression[:-1]}{options['compresslevel']}"
    return dataclasses.replace(
        schema, storage_format=storage_format, compression=compression
    )


def _schema_from_ast(stmt: ast.CreateTableStmt) -> TableSchema:
    columns = [
        Column(c.name, DataType.parse(c.type_name), c.not_null) for c in stmt.columns
    ]
    if stmt.distributed_by:
        distribution = Distribution.hash(*stmt.distributed_by)
    elif stmt.distributed_randomly:
        distribution = Distribution.random()
    else:
        # HAWQ/Greenplum default: hash on the first column.
        distribution = Distribution.hash(columns[0].name)

    options = {k.lower(): str(v).lower() for k, v in stmt.options.items()}
    orientation = options.get("orientation", "row")
    storage_format = {"row": "ao", "column": "co", "parquet": "parquet"}.get(
        orientation
    )
    if storage_format is None:
        raise SemanticError(f"unknown orientation {orientation!r}")
    compresstype = options.get("compresstype", "none")
    compresslevel = options.get("compresslevel")
    if compresstype in ("zlib", "gzip"):
        compression = f"{compresstype}{compresslevel or 1}"
    else:
        compression = compresstype

    partition_spec = (
        _partition_spec(stmt.partition_by, columns) if stmt.partition_by else None
    )
    return TableSchema(
        name=stmt.name,
        columns=columns,
        distribution=distribution,
        partition_spec=partition_spec,
        storage_format=storage_format,
        compression=compression,
    )


def _partition_spec(clause: ast.PartitionByClause, columns) -> PartitionSpec:
    if clause.kind == "list":
        partitions = tuple(
            Partition(
                name=name,
                in_values=tuple(compile_expr_value(v) for v in values),
            )
            for name, values in clause.list_parts
        )
        return PartitionSpec(column=clause.column, kind="list", partitions=partitions)

    start = compile_expr_value(clause.start)
    end = compile_expr_value(clause.end)
    if clause.every is None:
        partitions = (Partition(name="1", lower=start, upper=end),)
        return PartitionSpec(
            column=clause.column, kind="range", partitions=partitions
        )
    from repro.planner import exprs as ex  # interval stepping
    from repro.executor.expr import add_interval, _Interval

    every = compile_expr_value(clause.every)
    parts: List[Partition] = []
    lower = start
    index = 1
    while lower < end:
        if isinstance(every, _Interval):
            upper = add_interval(lower, every.quantity, every.unit)
        else:
            upper = lower + every
        if upper > end:
            upper = end
        parts.append(Partition(name=str(index), lower=lower, upper=upper))
        lower = upper
        index += 1
        if index > 10000:
            raise SemanticError("EVERY produced too many partitions")
    return PartitionSpec(
        column=clause.column, kind="range", partitions=tuple(parts)
    )
