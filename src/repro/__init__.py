"""repro: a from-scratch reproduction of HAWQ (SIGMOD 2014).

A massively parallel processing SQL engine over a simulated HDFS, with
the paper's UDP interconnect, transaction model, read-optimized storage
formats, PXF extension framework, and a Stinger/MapReduce baseline for
the evaluation. See DESIGN.md for the system inventory and EXPERIMENTS.md
for the reproduced figures.
"""

from repro.engine import Engine, Session
from repro.executor.runner import QueryResult
from repro.simtime import CostModel, QueryCost

__version__ = "1.0.0"

__all__ = ["CostModel", "Engine", "QueryCost", "QueryResult", "Session"]
