"""Simulated time: the hardware cost model behind every reported second.

The engine executes queries for real on scaled-down data; *time* is
simulated. Operators report physical work — bytes read from disk, bytes
sent on the wire, tuples processed — to a :class:`CostAccumulator`, which
converts work into seconds using the constants in :class:`CostModel`.

Two kinds of cost exist:

* **Scaled costs** (per byte / per tuple) are multiplied by
  ``CostModel.scale`` so that a small in-memory dataset stands in for the
  paper's 160GB / 1.6TB TPC-H volumes. The benchmark harness chooses the
  scale as ``nominal_bytes_per_segment / actual_bytes_per_segment``.
* **Fixed costs** (query dispatch, container start-up, connection set-up)
  are *not* scaled: a 3 s YARN container launch takes 3 s regardless of
  data volume. Getting this split right is what lets the Stinger-vs-HAWQ
  gap widen on short queries exactly as in the paper.

The default constants model the paper's testbed (Section 8): 16 segment
hosts, 2x6-core 2.93 GHz Xeons, 48 GB RAM, 12x300 GB disks, one dual-port
10 GigE NIC per host, 6 HAWQ segments per host.

Query *wall* time is no longer folded per-slice here: the event-driven
simulator in :mod:`repro.simtime.scheduler` composes per-(slice, segment)
task durations into a critical path through the task DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class CostModel:
    """Hardware and software cost constants, in seconds / bytes / tuples.

    Instances are mutable on purpose: the benchmark harness adjusts
    ``scale``, ``io_cached`` and interconnect parameters per experiment.
    """

    #: Multiplier applied to all per-byte / per-tuple costs (see module doc).
    scale: float = 1.0
    #: Number of *real* segments being modeled (the paper's cluster has
    #: 96); interconnect stream-concurrency effects use this rather than
    #: the (smaller) simulated segment count. 0 = use simulated count.
    modeled_segments: int = 0

    #: Effective sequential HDFS read bandwidth of one segment (its share
    #: of the host's 12 disks, after checksumming and framing overhead).
    disk_seq_bw: float = 130e6
    #: HDFS write path is replicated (pipeline of ``hdfs_replication``
    #: writes); effective write bandwidth divides by this.
    hdfs_replication: int = 3
    #: When True, table data fits in the page cache (the paper's 160 GB
    #: "CPU-bound" configuration) and data-file reads cost no disk time.
    io_cached: bool = False

    #: Network bandwidth share of one segment (10 GigE / 6 segments).
    net_bw: float = 90e6
    #: One-way network latency between hosts.
    net_latency: float = 100e-6

    #: Base CPU cost to push one tuple through one executor operator.
    cpu_tuple: float = 0.25e-6
    #: CPU cost to evaluate one expression/column access on one tuple.
    cpu_column: float = 0.07e-6
    #: CPU cost per byte to serialize/deserialize a tuple at a motion.
    cpu_net_byte: float = 1.5e-9
    #: CPU cost per uncompressed byte to deserialize storage-format data
    #: (row/vector decoding, framing, checksums). AO pays this for every
    #: column of every row; CO/Parquet only for projected columns.
    cpu_format_byte: float = 1.6e-9
    #: Parquet's PAX row groups decode vectors slightly faster than CO's
    #: per-column files (denser layout, fewer block headers)...
    parquet_cpu_factor: float = 0.55
    #: ...but reading a column subset from row groups amplifies IO
    #: (group headers/directories and chunk-granular reads).
    parquet_io_amplification: float = 1.35

    #: Per-query fixed cost on the master: parse, analyze, plan.
    query_setup: float = 0.08
    #: Fixed cost to dispatch a plan and start one gang of QEs.
    gang_setup: float = 0.03
    #: Extra per-segment dispatch cost avoided by direct dispatch.
    dispatch_per_segment: float = 0.002
    #: Round-trip for one catalog lookup RPC to the master (used by the
    #: metadata-dispatch ablation: without self-described plans every QE
    #: pays this per catalog object it touches).
    catalog_rpc: float = 0.004

    # --- TCP vs UDP interconnect (Section 4) -------------------------------
    #: Connection set-up cost per TCP stream (3-way handshake + buffers).
    tcp_conn_setup: float = 1.2e-3
    #: TCP throughput degradation under high stream concurrency on one
    #: host: effective bw = net_bw / (1 + tcp_concurrency_penalty * streams).
    tcp_concurrency_penalty: float = 0.004
    #: Hard cap of concurrent TCP streams per host (port exhaustion).
    tcp_max_streams_per_host: int = 60000
    #: UDP virtual connections multiplex one socket: tiny per-stream cost.
    udp_conn_setup: float = 5e-6
    #: UDP protocol overhead per payload byte (acks, headers, retransmits
    #: at the default loss rate).
    udp_byte_overhead: float = 0.05

    # --- MapReduce / YARN baseline (Section 8.1) ---------------------------
    #: JVM + AM start-up per MapReduce job.
    mr_job_setup: float = 8.0
    #: Container launch cost per task (JVM fork, no reuse).
    mr_container_setup: float = 5.0
    #: Scheduling delay per task wave.
    mr_wave_delay: float = 2.0
    #: HTTP shuffle bandwidth per reducer (slower than raw NIC share).
    mr_shuffle_bw: float = 4e6
    #: Per-tuple CPU cost in the MR engine: Hive 0.12's row-at-a-time
    #: SerDe + operator-tree interpreter.
    mr_cpu_tuple: float = 2.5e-6
    mr_cpu_column: float = 0.3e-6
    #: Memory available for a reducer's merge-sort before it goes
    #: multi-pass.
    mr_sort_mem: float = 0.5e9
    #: Effective per-container disk bandwidth for spills/merges when the
    #: data does not fit in cache: 9 concurrent containers thrash the
    #: node's 12 disks, so each sees about a third of sequential speed.
    mr_spill_bw: float = 35e6
    #: Nominal HDFS block size used to derive map-task counts.
    mr_block_size: float = 128e6
    #: Memory available to one reducer container, in nominal bytes; a
    #: reducer whose input exceeds this fails the job (paper: 3 queries
    #: failed with "Reducer out of memory" at 1.6 TB).
    mr_reducer_mem: float = 4.4e9

    def scaled(self, seconds: float) -> float:
        """Scale a data-proportional cost to nominal volume."""
        return seconds * self.scale

    def copy(self) -> "CostModel":
        """Return an independent copy of this model."""
        return CostModel(**{f.name: getattr(self, f.name) for f in fields(self)})


@dataclass
class CostAccumulator:
    """Accumulates simulated seconds of work for one execution context.

    One accumulator exists per (slice, segment) pair in the MPP engine and
    per task in the MapReduce baseline. Methods convert physical work into
    seconds; ``seconds`` is the running total.
    """

    model: CostModel
    seconds: float = 0.0
    #: Raw counters, useful for reporting and assertions in tests.
    disk_read_bytes: int = 0
    disk_write_bytes: int = 0
    net_bytes: int = 0
    tuples: int = 0

    def fixed(self, seconds: float) -> None:
        """Add an unscaled fixed cost (set-up, RPC, container launch)."""
        self.seconds += seconds

    def disk_read(self, nbytes: int, *, sequential: bool = True) -> None:
        """Charge a read of ``nbytes`` from local disk (or page cache)."""
        self.disk_read_bytes += nbytes
        if not self.model.io_cached:
            bw = self.model.disk_seq_bw if sequential else self.model.disk_seq_bw / 4
            self.seconds += self.model.scaled(nbytes / bw)

    def disk_write(self, nbytes: int, *, replicated: bool = False) -> None:
        """Charge a write of ``nbytes``; HDFS writes pay the replication
        pipeline, local spill files do not."""
        self.disk_write_bytes += nbytes
        factor = self.model.hdfs_replication if replicated else 1
        self.seconds += self.model.scaled(nbytes * factor / self.model.disk_seq_bw)

    def cpu_tuples(self, ntuples: int, ncolumns: int = 0, weight: float = 1.0) -> None:
        """Charge CPU for pushing ``ntuples`` through one operator that
        touches ``ncolumns`` columns per tuple."""
        self.tuples += ntuples
        per_tuple = self.model.cpu_tuple * weight + self.model.cpu_column * ncolumns
        self.seconds += self.model.scaled(ntuples * per_tuple)

    def cpu_bytes(self, nbytes: int, per_byte: float) -> None:
        """Charge CPU proportional to a byte volume (codecs, framing)."""
        self.seconds += self.model.scaled(nbytes * per_byte)

    def network(
        self,
        nbytes: int,
        bandwidth: "float | None" = None,
        messages: int = 1,
    ) -> None:
        """Charge wire time for sending ``nbytes`` as ``messages`` charged
        sends. Latency is paid **per message**, not per fragment: a layer
        that streams one logical payload in many fragments must batch them
        into one charged send (``messages=1``) — or pass ``messages=0``
        for a continuation whose latency is accounted elsewhere (the
        scheduler charges motion-edge latency on the task DAG edge)."""
        self.net_bytes += nbytes
        bw = bandwidth if bandwidth is not None else self.model.net_bw
        self.seconds += (
            self.model.scaled(nbytes / bw) + self.model.net_latency * messages
        )


@dataclass
class QueryCost:
    """Final simulated cost of one query, as reported to clients."""

    seconds: float
    disk_read_bytes: int = 0
    disk_write_bytes: int = 0
    net_bytes: int = 0
    tuples: int = 0

    @classmethod
    def from_accumulator(cls, acc: CostAccumulator) -> "QueryCost":
        return cls(
            seconds=acc.seconds,
            disk_read_bytes=acc.disk_read_bytes,
            disk_write_bytes=acc.disk_write_bytes,
            net_bytes=acc.net_bytes,
            tuples=acc.tuples,
        )
