"""Event-driven task scheduler: query wall time as a critical path.

The distributed runtime models one query as a DAG of *(slice, segment)*
tasks. Each task has a duration — the simulated seconds its
:class:`~repro.simtime.CostAccumulator` charged while the worker executed
the slice — and edges connect a motion's senders to its receivers, each
edge carrying the interconnect latency (plus a materialization penalty
when pipelining is disabled). The scheduler replays the DAG on a
discrete-event clock: a task starts when all of its incoming edges have
fired, and the query's wall time is the finish time of the last task —
the **critical path** through the task DAG, not a per-slice
max-then-sum fold.

Durations are charged by the cost model, so the event clock here only
*composes* them; it never invents time of its own.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

#: One task is one plan slice executing on one segment (QD = -1).
TaskKey = Tuple[int, int]


@dataclass
class TaskTiming:
    """Per-task facts surfaced to EXPLAIN ANALYZE."""

    seconds: float
    rows: int
    bytes: int


@dataclass
class SliceTiming:
    """One slice's timeline summary: composed finish time on the event
    clock, rows sent through its motion (or returned, for the top
    slice), and the per-segment task breakdown."""

    finish: float
    rows: int
    tasks: Dict[int, TaskTiming] = field(default_factory=dict)


@dataclass
class TaskSchedule:
    """The scheduler's output: when every task ran, and what bound it."""

    start: Dict[TaskKey, float]
    finish: Dict[TaskKey, float]
    makespan: float
    #: Chain of tasks, first to last, whose durations + edge delays sum
    #: to ``makespan`` — the query's critical path.
    critical_path: List[TaskKey]


@dataclass
class _Task:
    key: TaskKey
    duration: float
    release: float


class EventScheduler:
    """Builds a task DAG, then replays it on a discrete-event clock.

    Deterministic: events fire in (time, insertion order), and tie-broken
    choices (the critical path's deciding predecessor) follow processing
    order, which is itself deterministic.
    """

    def __init__(self) -> None:
        self._tasks: Dict[TaskKey, _Task] = {}
        self._out: Dict[TaskKey, List[Tuple[TaskKey, float]]] = {}
        self._indegree: Dict[TaskKey, int] = {}

    def add_task(
        self, key: TaskKey, duration: float, release: float = 0.0
    ) -> None:
        """Register a task; ``release`` is its earliest possible start."""
        if key in self._tasks:
            raise ReproError(f"scheduler task {key} added twice")
        if duration < 0 or release < 0:
            raise ReproError(f"scheduler task {key} has negative time")
        self._tasks[key] = _Task(key=key, duration=duration, release=release)
        self._out[key] = []
        self._indegree[key] = 0

    def add_edge(self, src: TaskKey, dst: TaskKey, delay: float = 0.0) -> None:
        """``dst`` may not start before ``src`` finishes + ``delay``.

        Parallel edges are allowed (a barrier edge plus a data-stream
        edge between the same pair); the later arrival wins.
        """
        if src not in self._tasks or dst not in self._tasks:
            raise ReproError(f"scheduler edge {src}->{dst} references unknown task")
        if delay < 0:
            raise ReproError(f"scheduler edge {src}->{dst} has negative delay")
        self._out[src].append((dst, delay))
        self._indegree[dst] += 1

    def run(self) -> TaskSchedule:
        """Replay the DAG; raises :class:`ReproError` on a dependency cycle."""
        indegree = dict(self._indegree)
        ready: Dict[TaskKey, float] = {
            key: task.release for key, task in self._tasks.items()
        }
        deciding: Dict[TaskKey, Optional[TaskKey]] = {
            key: None for key in self._tasks
        }
        start: Dict[TaskKey, float] = {}
        finish: Dict[TaskKey, float] = {}
        counter = itertools.count()
        heap: List[Tuple[float, int, TaskKey]] = []

        def launch(key: TaskKey) -> None:
            start[key] = ready[key]
            heapq.heappush(
                heap,
                (ready[key] + self._tasks[key].duration, next(counter), key),
            )

        for key in self._tasks:
            if indegree[key] == 0:
                launch(key)
        while heap:
            now, _seq, key = heapq.heappop(heap)
            finish[key] = now
            for dst, delay in self._out[key]:
                arrival = now + delay
                if arrival > ready[dst]:
                    ready[dst] = arrival
                    deciding[dst] = key
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    launch(dst)
        if len(finish) != len(self._tasks):
            stuck = sorted(k for k in self._tasks if k not in finish)
            raise ReproError(
                f"scheduler deadlock: cyclic dependencies among {stuck[:4]}"
            )
        if not finish:
            return TaskSchedule(start={}, finish={}, makespan=0.0, critical_path=[])
        last = max(finish, key=lambda k: (finish[k], k))
        path: List[TaskKey] = []
        cursor: Optional[TaskKey] = last
        while cursor is not None:
            path.append(cursor)
            cursor = deciding[cursor]
        path.reverse()
        return TaskSchedule(
            start=start,
            finish=finish,
            makespan=finish[last],
            critical_path=path,
        )
