"""Event-driven task scheduler: query wall time as a critical path.

The distributed runtime models one query as a DAG of *(slice, segment)*
tasks. Each task has a duration — the simulated seconds its
:class:`~repro.simtime.CostAccumulator` charged while the worker executed
the slice — and edges connect a motion's senders to its receivers, each
edge carrying the interconnect latency (plus a materialization penalty
when pipelining is disabled). The scheduler replays the DAG on a
discrete-event clock: a task starts when all of its incoming edges have
fired, and the query's wall time is the finish time of the last task —
the **critical path** through the task DAG, not a per-slice
max-then-sum fold.

Concurrency (PR 7) extends the same clock to *many* in-flight queries:
a task may declare a **slot** — a shared one-task-at-a-time resource,
in practice the executing segment — and tasks from different queries
contend for it. A ready task whose slot is busy parks until the slot
frees; among parked tasks the earliest ``(ready time, key)`` wins, a
stable tie-break that makes every interleaving a pure function of the
submitted workload. Tasks and edges may also be added *while the clock
runs* (see :meth:`EventScheduler.watch`), which is how a closed-loop
stream submits its next query the instant the previous one finishes.

Durations are charged by the cost model, so the event clock here only
*composes* them; it never invents time of its own.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

#: One task is one plan slice executing on one segment (QD = -1).
TaskKey = Tuple[int, int]

#: Event ranks: at equal timestamps every finish is processed before any
#: slot arrival, so a slot freed at ``t`` is visible to a task whose
#: ready time is exactly ``t``; timers fire last, so a timer at ``t``
#: observes every task state change that happened at ``t``.
_FINISH = 0
_ARRIVAL = 1
_TIMER = 2


def _disarmed(_now: float) -> None:
    """Replacement callback for watchers disarmed by cancellation."""


@dataclass
class TaskTiming:
    """Per-task facts surfaced to EXPLAIN ANALYZE."""

    seconds: float
    rows: int
    bytes: int


@dataclass
class SliceTiming:
    """One slice's timeline summary: composed finish time on the event
    clock, rows sent through its motion (or returned, for the top
    slice), and the per-segment task breakdown."""

    finish: float
    rows: int
    tasks: Dict[int, TaskTiming] = field(default_factory=dict)


@dataclass
class TaskSchedule:
    """The scheduler's output: when every task ran, and what bound it."""

    start: Dict[TaskKey, float]
    finish: Dict[TaskKey, float]
    makespan: float
    #: Chain of tasks, first to last, whose durations + edge delays sum
    #: to ``makespan`` — the query's critical path.
    critical_path: List[TaskKey]
    #: Per-task seconds spent parked on a busy slot (0.0 for tasks with
    #: no slot, or whose slot was free at their ready time).
    waits: Dict[TaskKey, float] = field(default_factory=dict)


@dataclass
class _Task:
    key: TaskKey
    duration: float
    release: float
    slot: Optional[object] = None


@dataclass
class TaskGraph:
    """One executed query's task DAG, portable across schedulers.

    Captured by the distributed runtime at gather time (tasks carry the
    gang-mean durations the serial schedule used, edges the motion and
    same-segment serialization constraints), and replayed either alone
    (:meth:`replay` — reproduces the serial makespan exactly) or
    composed with other queries' graphs on a shared scheduler with
    per-segment slots. ``overhead_seconds`` is the master-side time that
    precedes the tasks: dispatch overhead plus init-plan execution.
    """

    tasks: List[Tuple[TaskKey, float]]
    edges: List[Tuple[TaskKey, TaskKey, float]]
    overhead_seconds: float = 0.0

    def segments(self) -> List[int]:
        """Every real segment this query's slices touch (QD excluded)."""
        return sorted({seg for (_sid, seg), _d in self.tasks if seg >= 0})

    def makespan(self) -> float:
        return self.replay().makespan

    def replay(self) -> TaskSchedule:
        """Re-run this graph alone on a fresh scheduler."""
        scheduler = EventScheduler()
        for key, duration in self.tasks:
            scheduler.add_task(key, duration)
        for src, dst, delay in self.edges:
            scheduler.add_edge(src, dst, delay=delay)
        return scheduler.run()


class EventScheduler:
    """Builds a task DAG, then replays it on a discrete-event clock.

    Deterministic: events fire in (time, finish-before-arrival,
    insertion order); parked tasks acquire a freed slot in stable
    ``(ready time, key)`` order; and tie-broken choices (the critical
    path's deciding predecessor) follow processing order, which is
    itself deterministic. A pure DAG — no slots, no mid-run additions —
    replays bit-identically to the PR-4 scheduler.
    """

    def __init__(self) -> None:
        #: Optional :class:`repro.sanitize.DetSan`: when set, the run
        #: state is wrapped in mutation-tracking guards and every event
        #: executes inside its query's sanitizer scope.
        self.detsan = None
        self._tasks: Dict[TaskKey, _Task] = {}
        self._out: Dict[TaskKey, List[Tuple[TaskKey, float]]] = {}
        self._indegree: Dict[TaskKey, int] = {}
        #: ``[pending key set, callback]`` pairs (see :meth:`watch`).
        self._watchers: List[list] = []
        self._watch_index: Dict[TaskKey, List[list]] = {}
        self._running = False
        # Run state (only meaningful while _running).
        self._now = 0.0
        self._ready: Dict[TaskKey, float] = {}
        self._deciding: Dict[TaskKey, Optional[TaskKey]] = {}
        self._start: Dict[TaskKey, float] = {}
        self._finish: Dict[TaskKey, float] = {}
        self._waits: Dict[TaskKey, float] = {}
        self._indeg: Dict[TaskKey, int] = {}
        self._heap: List[Tuple[float, int, int, TaskKey]] = []
        self._counter = itertools.count()
        self._busy: Dict[object, Optional[TaskKey]] = {}
        self._parked: Dict[object, List[TaskKey]] = {}
        self._deferred: List[TaskKey] = []
        self._cancelled: set = set()
        self._timers: Dict[int, Callable[[float], None]] = {}
        self._timer_ids = itertools.count()
        self._pending_timers: List[Tuple[float, Callable[[float], None]]] = []

    # ------------------------------------------------------------ building
    def add_task(
        self,
        key: TaskKey,
        duration: float,
        release: float = 0.0,
        slot: Optional[object] = None,
    ) -> None:
        """Register a task; ``release`` is its earliest possible start.

        ``slot`` names a shared one-task-at-a-time resource (a segment):
        tasks sharing a slot never overlap, regardless of which query
        they belong to. Tasks may be added while the clock runs (from a
        :meth:`watch` callback); a mid-run release in the past is
        clamped to the current simulated time.
        """
        if key in self._tasks:
            raise ReproError(f"scheduler task {key} added twice")
        if duration < 0 or release < 0:
            raise ReproError(f"scheduler task {key} has negative time")
        if self._running:
            release = max(release, self._now)
        task = _Task(key=key, duration=duration, release=release, slot=slot)
        self._tasks[key] = task
        self._out[key] = []
        self._indegree[key] = 0
        if self._running:
            self._ready[key] = release
            self._deciding[key] = None
            self._indeg[key] = 0
            # Launch is deferred until the current event (and the
            # callback adding this task's edges) fully settles.
            self._deferred.append(key)

    def add_edge(self, src: TaskKey, dst: TaskKey, delay: float = 0.0) -> None:
        """``dst`` may not start before ``src`` finishes + ``delay``.

        Parallel edges are allowed (a barrier edge plus a data-stream
        edge between the same pair); the later arrival wins.
        """
        if src not in self._tasks or dst not in self._tasks:
            raise ReproError(f"scheduler edge {src}->{dst} references unknown task")
        if delay < 0:
            raise ReproError(f"scheduler edge {src}->{dst} has negative delay")
        if self._running and dst in self._start:
            raise ReproError(
                f"scheduler edge {src}->{dst} added after its endpoint ran"
            )
        if self._running and src in self._finish:
            # Late edge from an already-finished source (event-driven
            # wave dispatch wires the next wave at the previous wave's
            # completion event): apply its exact arrival time to the
            # destination directly — no indegree, the constraint is
            # already resolved.
            arrival = self._finish[src] + delay
            if arrival > self._ready[dst]:
                self._ready[dst] = arrival
                self._deciding[dst] = src
            return
        self._out[src].append((dst, delay))
        self._indegree[dst] += 1
        if self._running:
            self._indeg[dst] += 1

    def add_graph(self, graph: TaskGraph, prefix: int, release: float = 0.0,
                  shared_slots: bool = True) -> List[TaskKey]:
        """Instantiate one query's :class:`TaskGraph` atomically.

        Keys are namespaced as ``(prefix, slice_id, segment)`` so many
        queries coexist; ``release`` delays every task (queue admission
        plus the query's own master-side overhead); with
        ``shared_slots`` each real segment becomes the task's slot (QD
        tasks never contend — every session runs its own QD process).
        Returns the instantiated keys, for :meth:`watch`.
        """
        keys: List[TaskKey] = []
        for (slice_id, segment), duration in graph.tasks:
            key = (prefix, slice_id, segment)
            self.add_task(
                key,
                duration,
                release=release,
                slot=segment if (shared_slots and segment >= 0) else None,
            )
            keys.append(key)
        for (s1, g1), (s2, g2), delay in graph.edges:
            self.add_edge((prefix, s1, g1), (prefix, s2, g2), delay=delay)
        return keys

    def watch(
        self, keys: Iterable[TaskKey], callback: Callable[[float], None]
    ) -> None:
        """Invoke ``callback(finish_time)`` once every key has finished.

        The callback fires while the clock runs and may add tasks,
        edges, and further watchers — the mechanism closed-loop streams
        use to submit their next query at the previous one's completion.
        """
        pending = set()
        for key in keys:
            if key not in self._tasks:
                raise ReproError(f"scheduler watch references unknown task {key}")
            if key not in self._finish:
                pending.add(key)
        if not pending:
            callback(self._now)
            return
        entry = [pending, callback]
        self._watchers.append(entry)
        for key in sorted(pending):
            self._watch_index.setdefault(key, []).append(entry)

    def at(self, time: float, callback: Callable[[float], None]) -> None:
        """Invoke ``callback(now)`` at an absolute simulated time.

        Timers are first-class scheduler events — admission arrivals,
        statement timeouts, and chaos injections all fire from them.
        They rank after finishes and arrivals at the same timestamp, so
        a timer observes every task-state change of its instant. A
        mid-run timer in the past is clamped to the current time.
        """
        if time < 0:
            raise ReproError(f"scheduler timer at negative time {time}")
        if not self._running:
            self._pending_timers.append((time, callback))
            return
        self._schedule_timer(max(time, self._now), callback)

    def _schedule_timer(
        self, time: float, callback: Callable[[float], None]
    ) -> None:
        idx = next(self._timer_ids)
        self._timers[idx] = callback
        heapq.heappush(
            self._heap, (time, _TIMER, next(self._counter), ("__timer__", idx))
        )

    def cancel_tasks(self, keys: Iterable[TaskKey]) -> List[TaskKey]:
        """Truncate unfinished tasks at the current simulated time.

        Mid-run only. Each cancelled task is recorded as finishing
        *now* (a running task's remaining duration is forfeited; a task
        that never started gets a zero-length window), its held slot is
        freed — waking the best parked waiter, exactly as a natural
        completion would — and any watcher observing it is disarmed, so
        the cancelled query's own continuation callbacks never fire.
        Returns the keys actually cancelled.
        """
        if not self._running:
            raise ReproError("scheduler cancel_tasks outside run()")
        cancelled: List[TaskKey] = []
        for key in sorted(keys):
            if key not in self._tasks or key in self._finish:
                continue
            cancelled.append(key)
            self._cancelled.add(key)
            if key not in self._start:
                self._start[key] = self._now
                self._waits[key] = 0.0
            self._finish[key] = self._now
            for entry in self._watch_index.pop(key, []):
                entry[0].clear()
                entry[1] = _disarmed  # other keys' completions: no-op
            slot = self._tasks[key].slot
            if slot is None:
                continue
            parked = self._parked.get(slot)
            if parked and key in parked:
                parked.remove(key)
            if self._busy.get(slot) is key:
                self._busy[slot] = None
                if parked:
                    winner = min(parked, key=lambda k: (self._ready[k], k))
                    parked.remove(winner)
                    self._start_task(winner, self._now)
        return cancelled

    @property
    def now(self) -> float:
        """Current simulated time (meaningful inside watch callbacks)."""
        return self._now

    @property
    def running(self) -> bool:
        """True while :meth:`run` is replaying events — the window in
        which mid-run APIs (:meth:`cancel_tasks`) are legal."""
        return self._running

    # ----------------------------------------------------------- telemetry
    def finished_count(self, keys: Iterable[TaskKey]) -> int:
        """How many of ``keys`` have finished (passive, mid-run safe)."""
        return sum(1 for key in keys if key in self._finish)

    def slot_usage(self) -> Dict[object, Tuple[int, float]]:
        """Per-slot occupancy so far: ``slot -> (tasks started, busy
        seconds)``.

        Busy time is the summed duration of finished tasks plus the
        elapsed portion of a still-running task at the current clock.
        Slotless tasks (master-side synthetics) are excluded. Purely
        passive — reads the timeline maps, mutates nothing — so the
        pg_stat_segments view can sample it mid-run.
        """
        out: Dict[object, List] = {}
        for key in sorted(self._start):
            task = self._tasks.get(key)
            if task is None or task.slot is None:
                continue
            entry = out.setdefault(task.slot, [0, 0.0])
            entry[0] += 1
            end = self._finish.get(key, self._now)
            entry[1] += end - self._start[key]
        return {
            slot: (count, busy)
            for slot, (count, busy) in sorted(out.items())
        }

    # ------------------------------------------------------------- running
    def run(self) -> TaskSchedule:
        """Replay the DAG; raises :class:`ReproError` on a dependency cycle."""
        self._indeg = dict(self._indegree)
        self._ready = {key: task.release for key, task in self._tasks.items()}
        self._deciding = {key: None for key in self._tasks}
        self._start = {}
        self._finish = {}
        self._waits = {}
        self._counter = itertools.count()
        self._heap = []
        self._busy = {}
        self._parked = {}
        self._deferred = []
        self._cancelled = set()
        self._timers = {}
        self._now = 0.0
        self._running = True
        if self.detsan is not None:
            self._install_guards()
        try:
            for time, callback in self._pending_timers:
                self._schedule_timer(time, callback)
            self._pending_timers = []
            for key in list(self._tasks):
                if self._indeg[key] == 0:
                    scope = self._event_scope(key)
                    if scope is not None:
                        with scope:
                            self._release_task(key)
                    else:
                        self._release_task(key)
            while self._heap:
                now, rank, _seq, key = heapq.heappop(self._heap)
                self._now = now
                if rank == _TIMER:
                    self._timers.pop(key[1])(now)
                    self._flush_deferred()
                    continue
                if key in self._cancelled:
                    continue  # stale event of a cancelled task
                scope = self._event_scope(key)
                if scope is not None:
                    with scope:
                        if rank == _FINISH:
                            self._complete(key, now)
                        else:
                            self._arrive(key, now)
                elif rank == _FINISH:
                    self._complete(key, now)
                else:
                    self._arrive(key, now)
                self._flush_deferred()
        finally:
            self._running = False
        if len(self._finish) != len(self._tasks):
            stuck = sorted(k for k in self._tasks if k not in self._finish)
            raise ReproError(
                f"scheduler deadlock: cyclic dependencies among {stuck[:4]}"
            )
        finish = self._finish
        if not finish:
            return TaskSchedule(start={}, finish={}, makespan=0.0, critical_path=[])
        last = max(finish, key=lambda k: (finish[k], k))
        path: List[TaskKey] = []
        cursor: Optional[TaskKey] = last
        while cursor is not None:
            path.append(cursor)
            cursor = self._deciding[cursor]
        path.reverse()
        return TaskSchedule(
            start=self._start,
            finish=finish,
            makespan=finish[last],
            critical_path=path,
            waits=self._waits,
        )

    # ----------------------------------------------------------- internals
    def _install_guards(self) -> None:
        """Wrap the freshly-built run state in DetSan mutation guards.

        ``_busy``/``_parked`` are registered shared structures (slot
        contention is the product); the per-task-key maps are *not*
        registered, so the sanitizer's ownership check actively polices
        them — a cross-query overwrite of another query's ready/finish
        entry raises immediately."""
        guard = self.detsan.guard_dict
        self._busy = guard(self._busy, "EventScheduler._busy")
        self._parked = guard(self._parked, "EventScheduler._parked")
        self._ready = guard(self._ready, "EventScheduler._ready")
        self._start = guard(self._start, "EventScheduler._start")
        self._finish = guard(self._finish, "EventScheduler._finish")
        self._waits = guard(self._waits, "EventScheduler._waits")

    def _event_scope(self, key: TaskKey):
        """Sanitizer scope for one event: the query half of a composed
        task key (``(sn, slice, segment)``); None when untracked."""
        if (
            self.detsan is not None
            and isinstance(key, tuple)
            and len(key) == 3
        ):
            return self.detsan.scope(key[0])
        return None

    def _release_task(self, key: TaskKey) -> None:
        """All dependencies satisfied: start now, or contend for the slot."""
        slot = self._tasks[key].slot
        if slot is None:
            self._start_task(key, self._ready[key])
            return
        heapq.heappush(
            self._heap, (self._ready[key], _ARRIVAL, next(self._counter), key)
        )

    def _start_task(
        self, key: TaskKey, at: float, blocker: Optional[TaskKey] = None
    ) -> None:
        task = self._tasks[key]
        self._start[key] = at
        self._waits[key] = at - self._ready[key]
        if blocker is not None and at > self._ready[key]:
            self._deciding[key] = blocker
        if task.slot is not None:
            self._busy[task.slot] = key
        heapq.heappush(
            self._heap, (at + task.duration, _FINISH, next(self._counter), key)
        )

    def _arrive(self, key: TaskKey, now: float) -> None:
        """A slotted task's ready time came: take the slot or park."""
        if now < self._ready[key]:
            # A late finished-source edge pushed the ready time past
            # this (stale) arrival; re-arrive at the new ready time.
            heapq.heappush(
                self._heap,
                (self._ready[key], _ARRIVAL, next(self._counter), key),
            )
            return
        slot = self._tasks[key].slot
        if self._busy.get(slot) is None:
            self._start_task(key, now)
        else:
            self._parked.setdefault(slot, []).append(key)

    def _complete(self, key: TaskKey, now: float) -> None:
        self._finish[key] = now
        for dst, delay in self._out[key]:
            if dst in self._cancelled:
                continue
            arrival = now + delay
            if arrival > self._ready[dst]:
                self._ready[dst] = arrival
                self._deciding[dst] = key
            self._indeg[dst] -= 1
            if self._indeg[dst] == 0:
                self._release_task(dst)
        for entry in self._watch_index.pop(key, []):
            entry[0].discard(key)
            if not entry[0]:
                entry[1](now)
        slot = self._tasks[key].slot
        if slot is not None:
            self._busy[slot] = None
            parked = self._parked.get(slot)
            if parked:
                # Stable tie-break: earliest ready time, then key order.
                winner = min(parked, key=lambda k: (self._ready[k], k))
                parked.remove(winner)
                self._start_task(winner, now, blocker=key)

    def _flush_deferred(self) -> None:
        """Launch mid-run additions once the triggering event settled
        (the adding callback may still have been wiring their edges).

        Each launch runs under its own task's sanitizer scope — the
        flush happens after the adding event's scope has exited, but a
        slot-less task starts (and writes its run state) right here."""
        if not self._deferred:
            return
        added, self._deferred = self._deferred, []
        for key in added:
            if self._indeg[key] == 0 and key not in self._start:
                scope = self._event_scope(key)
                if scope is not None:
                    with scope:
                        self._release_task(key)
                else:
                    self._release_task(key)
