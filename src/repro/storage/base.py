"""Shared pieces of the storage formats: block framing, results, stats."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import Column, TableSchema, TypeKind
from repro.columnar.vector import (
    dict_vector,
    numeric_from_bytes,
    numeric_from_packed,
)
from repro.errors import StorageError
from repro.storage.compression import Codec

#: Column kinds stored as packed 8-byte values (decodable in bulk).
_FIXED_NUMERIC = {
    TypeKind.INT4,
    TypeKind.INT8,
    TypeKind.FLOAT8,
    TypeKind.DECIMAL,
}

#: Block header: magic (2) + row count (4) + uncompressed len (4) + compressed len (4).
BLOCK_MAGIC = 0xA001
_BLOCK_HEADER = struct.Struct("<HIII")
BLOCK_HEADER_SIZE = _BLOCK_HEADER.size

#: Default number of rows per storage block.
DEFAULT_BLOCK_ROWS = 1024


@dataclass
class WriteResult:
    """Outcome of one bulk write/append to a table's segment files."""

    #: New *physical* length of every file touched (path -> length).
    paths: Dict[str, int]
    #: The file the catalog's ``logical_length`` tracks (AO/Parquet data
    #: file; for CO the lengths of all column files are recorded).
    primary_path: str
    uncompressed_bytes: int = 0
    tupcount: int = 0


@dataclass
class ScanStats:
    """Physical work done by one scan, consumed by the cost model."""

    compressed_bytes: int = 0
    uncompressed_bytes: int = 0
    rows: int = 0
    blocks: int = 0
    #: Bytes served by a non-local HDFS replica (folded into the engine's
    #: network charge; lets the decode cache replay remote reads on hits).
    remote_bytes: int = 0
    #: Work *skipped* thanks to decode-cache hits when the engine's
    #: ``cache_simulated_costs`` knob is off — never charged to the model.
    cached_compressed_bytes: int = 0
    cached_uncompressed_bytes: int = 0


def pack_block(payload: bytes, row_count: int, codec: Codec) -> bytes:
    """Compress and frame one block."""
    compressed = codec.compress(payload)
    header = _BLOCK_HEADER.pack(BLOCK_MAGIC, row_count, len(payload), len(compressed))
    return header + compressed


def unpack_block_header(buf: bytes, offset: int = 0) -> Tuple[int, int, int]:
    """Returns (row_count, uncompressed_len, compressed_len)."""
    magic, rows, uncompressed, compressed = _BLOCK_HEADER.unpack_from(buf, offset)
    if magic != BLOCK_MAGIC:
        raise StorageError(f"bad block magic 0x{magic:04x} at offset {offset}")
    return rows, uncompressed, compressed


def iter_blocks(
    data: bytes, codec: Codec, stats: Optional[ScanStats] = None
) -> Iterator[Tuple[int, bytes]]:
    """Yield (row_count, payload) for each block in ``data``."""
    offset = 0
    while offset < len(data):
        if offset + BLOCK_HEADER_SIZE > len(data):
            raise StorageError("truncated block header")
        rows, uncompressed_len, compressed_len = unpack_block_header(data, offset)
        offset += BLOCK_HEADER_SIZE
        compressed = data[offset : offset + compressed_len]
        if len(compressed) != compressed_len:
            raise StorageError("truncated block payload")
        offset += compressed_len
        payload = codec.decompress(compressed)
        if len(payload) != uncompressed_len:
            raise StorageError("block failed decompression length check")
        if stats is not None:
            stats.compressed_bytes += BLOCK_HEADER_SIZE + compressed_len
            stats.uncompressed_bytes += uncompressed_len
            stats.rows += rows
            stats.blocks += 1
        yield rows, payload


def iter_framed_blocks(
    data: bytes, codec: Codec, stats: Optional[ScanStats] = None
) -> Iterator[Tuple[int, bytes, int, int]]:
    """Like :func:`iter_blocks` but also yields each block's framed
    on-disk size (header + compressed payload) and uncompressed length:
    ``(row_count, payload, framed_size, uncompressed_len)``. The decode
    cache needs framed sizes to track file-offset coverage."""
    offset = 0
    while offset < len(data):
        if offset + BLOCK_HEADER_SIZE > len(data):
            raise StorageError("truncated block header")
        rows, uncompressed_len, compressed_len = unpack_block_header(data, offset)
        offset += BLOCK_HEADER_SIZE
        compressed = data[offset : offset + compressed_len]
        if len(compressed) != compressed_len:
            raise StorageError("truncated block payload")
        offset += compressed_len
        payload = codec.decompress(compressed)
        if len(payload) != uncompressed_len:
            raise StorageError("block failed decompression length check")
        if stats is not None:
            stats.compressed_bytes += BLOCK_HEADER_SIZE + compressed_len
            stats.uncompressed_bytes += uncompressed_len
            stats.rows += rows
            stats.blocks += 1
        yield rows, payload, BLOCK_HEADER_SIZE + compressed_len, uncompressed_len


# ------------------------------------------------------- column-vector codec
def encode_column(
    values: Sequence[object], column: Column, out: bytearray
) -> None:
    """Append the vector encoding of one column's values for one block:
    null bitmap then non-null values back-to-back."""
    count = len(values)
    bitmap = bytearray((count + 7) // 8)
    for i, value in enumerate(values):
        if value is None:
            bitmap[i // 8] |= 1 << (i % 8)
    out += bytes(bitmap)
    for value in values:
        if value is not None:
            column.type.encode(value, out)


def decode_column(
    buf: bytes, offset: int, count: int, column: Column
) -> Tuple[object, int]:
    """Decode one column vector; returns (vector, new offset).

    Numeric columns come back as typed :class:`~repro.columnar.IntVector`
    / :class:`~repro.columnar.FloatVector` (bulk-decoded from the packed
    little-endian buffer, null bitmap turned into an explicit mask) and
    string columns as a :class:`~repro.columnar.DictVector` whose
    dictionary holds each distinct value of the block once. DATE/BOOL/
    BYTEA keep the plain Python-list representation. All of these
    duck-type as sequences of Python values, so row-path consumers are
    unaffected.
    """
    bitmap_len = (count + 7) // 8
    bitmap = buf[offset : offset + bitmap_len]
    offset += bitmap_len
    kind = column.type.kind
    if kind in _FIXED_NUMERIC:
        is_float = kind in (TypeKind.FLOAT8, TypeKind.DECIMAL)
        if not any(bitmap):  # no NULLs: one bulk frombuffer, zero copies
            end = offset + count * 8
            return numeric_from_bytes(buf[offset:end], is_float, count), end
        null_flags = [
            bool(bitmap[i >> 3] & (1 << (i & 7))) for i in range(count)
        ]
        end = offset + (count - sum(null_flags)) * 8
        vec = numeric_from_packed(buf[offset:end], is_float, count, null_flags)
        return vec, end
    if column.type.is_string:
        codes: List[int] = []
        dictionary: List[str] = []
        mapping: Dict[str, int] = {}
        decode_one = column.type.decode
        for i in range(count):
            if bitmap[i >> 3] & (1 << (i & 7)):
                codes.append(-1)
                continue
            value, offset = decode_one(buf, offset)
            code = mapping.get(value)
            if code is None:
                code = len(dictionary)
                mapping[value] = code
                dictionary.append(value)
            codes.append(code)
        return dict_vector(codes, dictionary), offset
    values: List[object] = []
    for i in range(count):
        if bitmap[i // 8] & (1 << (i % 8)):
            values.append(None)
        else:
            value, offset = column.type.decode(buf, offset)
            values.append(value)
    return values, offset


def batched(rows: Sequence[Sequence[object]], size: int) -> Iterator[Sequence[Sequence[object]]]:
    """Split rows into blocks of at most ``size``."""
    for start in range(0, len(rows), size):
        yield rows[start : start + size]
