"""AO: the row-oriented, read-optimized append-only format.

Rows are serialized whole (null bitmap + column values) into blocks,
each block compressed independently, blocks appended to one HDFS file
per (segment, segfile) lane. Scans always decode every column — the
format's disadvantage against CO/Parquet for narrow projections, which
Figure 11 quantifies.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.hdfs import HdfsClient
from repro.storage.base import (
    DEFAULT_BLOCK_ROWS,
    ScanStats,
    WriteResult,
    batched,
    iter_blocks,
    iter_framed_blocks,
    pack_block,
)
from repro.storage.cache import CachedBlock
from repro.storage.compression import get_codec

name = "ao"


def write(
    client: HdfsClient,
    base_path: str,
    rows: Sequence[Sequence[object]],
    schema: TableSchema,
    codec_name: str = "none",
    append: bool = False,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> WriteResult:
    """Write (or append) rows; returns new physical lengths and stats."""
    codec = get_codec(codec_name)
    uncompressed_total = 0
    data = bytearray()
    for block in batched(rows, block_rows):
        payload = bytearray()
        for row in block:
            schema.encode_row(row, payload)
        uncompressed_total += len(payload)
        data += pack_block(bytes(payload), len(block), codec)
    if append and client.exists(base_path):
        writer = client.append(base_path)
    else:
        writer = client.create(base_path)
    writer.write(bytes(data))
    writer.close()
    new_length = client.file_status(base_path).length
    return WriteResult(
        paths={base_path: new_length},
        primary_path=base_path,
        uncompressed_bytes=uncompressed_total,
        tupcount=len(rows),
    )


def scan(
    client: HdfsClient,
    paths: Dict[str, int],
    schema: TableSchema,
    codec_name: str = "none",
    columns: Optional[Sequence[int]] = None,
    stats: Optional[ScanStats] = None,
    cache=None,
) -> Iterator[Tuple[object, ...]]:
    """Scan rows up to each path's logical length.

    ``columns`` is accepted for interface uniformity but AO must decode
    whole rows regardless; projection happens above. ``paths`` maps the
    data file to its transaction-visible logical length.
    """
    codec = get_codec(codec_name)
    for path, logical_length in paths.items():
        if logical_length <= 0:
            continue
        if cache is None:
            data = client.read_file(path, logical_length)
            for row_count, payload in iter_blocks(data, codec, stats):
                offset = 0
                for _ in range(row_count):
                    row, offset = schema.decode_row(payload, offset)
                    yield row
        else:
            for rows in _row_blocks(
                client, path, logical_length, schema, codec, codec_name,
                stats, cache,
            ):
                yield from rows


def scan_blocks(
    client: HdfsClient,
    paths: Dict[str, int],
    schema: TableSchema,
    codec_name: str = "none",
    columns: Optional[Sequence[int]] = None,
    stats: Optional[ScanStats] = None,
    cache=None,
) -> Iterator[Tuple[int, Dict[int, List[object]]]]:
    """Yield ``(row_count, {column_index: values})`` per block. AO must
    decode whole rows, so every column is present in the dict."""
    ncols = len(schema.columns)
    codec = get_codec(codec_name)
    for path, logical_length in paths.items():
        if logical_length <= 0:
            continue
        for rows in _row_blocks(
            client, path, logical_length, schema, codec, codec_name,
            stats, cache,
        ):
            if not rows:
                continue
            vectors = [list(col) for col in zip(*rows)]
            yield len(rows), {i: vectors[i] for i in range(ncols)}


def _row_blocks(
    client: HdfsClient,
    path: str,
    logical_length: int,
    schema: TableSchema,
    codec,
    codec_name: str,
    stats: Optional[ScanStats],
    cache,
) -> Iterator[List[Tuple[object, ...]]]:
    """Yield each block's rows as a list, serving/filling the decode
    cache when one is provided (see ``storage/cache.py``)."""
    if cache is None:
        data = client.read_file(path, logical_length)
        for row_count, payload in iter_blocks(data, codec, stats):
            rows: List[Tuple[object, ...]] = []
            offset = 0
            for _ in range(row_count):
                row, offset = schema.decode_row(payload, offset)
                rows.append(row)
            yield rows
        return
    key = ("ao", path, client.write_epoch(path), codec_name)
    entry = cache.open_entry(key)
    served = 0
    for block in entry.blocks:
        if served + block.compressed_bytes > logical_length:
            break
        cache.replay(block, stats)
        served += block.compressed_bytes
        yield block.data
    if served >= logical_length:
        return
    reader = client.open(path)
    reader.seek(served)
    remote_before = client.remote_bytes_read
    data = reader.read(logical_length - served)
    remote_total = client.remote_bytes_read - remote_before
    tail_len = len(data)
    consumed = 0
    for row_count, payload, framed, uncompressed in iter_framed_blocks(
        data, codec, stats
    ):
        start = consumed
        consumed += framed
        remote = (
            remote_total * consumed // tail_len
            - remote_total * start // tail_len
        )
        rows = []
        offset = 0
        for _ in range(row_count):
            row, offset = schema.decode_row(payload, offset)
            rows.append(row)
        if entry.end_offset == served + start:
            before = entry.nbytes
            entry.append(
                CachedBlock(
                    row_count=row_count,
                    compressed_bytes=framed,
                    uncompressed_bytes=uncompressed,
                    remote_bytes=remote,
                    data=rows,
                )
            )
            cache.misses += 1
            cache.account(entry, entry.nbytes - before)
        yield rows
