"""AO: the row-oriented, read-optimized append-only format.

Rows are serialized whole (null bitmap + column values) into blocks,
each block compressed independently, blocks appended to one HDFS file
per (segment, segfile) lane. Scans always decode every column — the
format's disadvantage against CO/Parquet for narrow projections, which
Figure 11 quantifies.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.hdfs import HdfsClient
from repro.storage.base import (
    DEFAULT_BLOCK_ROWS,
    ScanStats,
    WriteResult,
    batched,
    iter_blocks,
    pack_block,
)
from repro.storage.compression import get_codec

name = "ao"


def write(
    client: HdfsClient,
    base_path: str,
    rows: Sequence[Sequence[object]],
    schema: TableSchema,
    codec_name: str = "none",
    append: bool = False,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> WriteResult:
    """Write (or append) rows; returns new physical lengths and stats."""
    codec = get_codec(codec_name)
    uncompressed_total = 0
    data = bytearray()
    for block in batched(rows, block_rows):
        payload = bytearray()
        for row in block:
            schema.encode_row(row, payload)
        uncompressed_total += len(payload)
        data += pack_block(bytes(payload), len(block), codec)
    if append and client.exists(base_path):
        writer = client.append(base_path)
    else:
        writer = client.create(base_path)
    writer.write(bytes(data))
    writer.close()
    new_length = client.file_status(base_path).length
    return WriteResult(
        paths={base_path: new_length},
        primary_path=base_path,
        uncompressed_bytes=uncompressed_total,
        tupcount=len(rows),
    )


def scan(
    client: HdfsClient,
    paths: Dict[str, int],
    schema: TableSchema,
    codec_name: str = "none",
    columns: Optional[Sequence[int]] = None,
    stats: Optional[ScanStats] = None,
) -> Iterator[Tuple[object, ...]]:
    """Scan rows up to each path's logical length.

    ``columns`` is accepted for interface uniformity but AO must decode
    whole rows regardless; projection happens above. ``paths`` maps the
    data file to its transaction-visible logical length.
    """
    for path, logical_length in paths.items():
        if logical_length <= 0:
            continue
        data = client.read_file(path, logical_length)
        codec = get_codec(codec_name)
        for row_count, payload in iter_blocks(data, codec, stats):
            offset = 0
            for _ in range(row_count):
                row, offset = schema.decode_row(payload, offset)
                yield row
