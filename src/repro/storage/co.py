"""CO: column-oriented storage, one segment file per column.

Each column's values are densely packed into their own series of blocks
in their own HDFS file, so a scan touches only the files of the columns
the query needs and compression sees homogeneous data (the paper notes
"notably higher compression ratios than row-oriented tables").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.columnar import as_list
from repro.errors import StorageError
from repro.hdfs import HdfsClient
from repro.storage.base import (
    DEFAULT_BLOCK_ROWS,
    ScanStats,
    WriteResult,
    batched,
    decode_column,
    encode_column,
    iter_blocks,
    iter_framed_blocks,
    pack_block,
)
from repro.storage.cache import CachedBlock
from repro.storage.compression import get_codec

name = "co"


def column_path(base_path: str, column_index: int) -> str:
    return f"{base_path}.c{column_index}"


def write(
    client: HdfsClient,
    base_path: str,
    rows: Sequence[Sequence[object]],
    schema: TableSchema,
    codec_name: str = "none",
    append: bool = False,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> WriteResult:
    """Write rows as per-column files ``<base>.c<i>``."""
    codec = get_codec(codec_name)
    uncompressed_total = 0
    paths: Dict[str, int] = {}
    per_column_data: List[bytearray] = [bytearray() for _ in schema.columns]
    for block in batched(rows, block_rows):
        for i, column in enumerate(schema.columns):
            payload = bytearray()
            encode_column([row[i] for row in block], column, payload)
            uncompressed_total += len(payload)
            per_column_data[i] += pack_block(bytes(payload), len(block), codec)
    for i, data in enumerate(per_column_data):
        path = column_path(base_path, i)
        if append and client.exists(path):
            writer = client.append(path)
        else:
            writer = client.create(path)
        writer.write(bytes(data))
        writer.close()
        paths[path] = client.file_status(path).length
    return WriteResult(
        paths=paths,
        primary_path=column_path(base_path, 0),
        uncompressed_bytes=uncompressed_total,
        tupcount=len(rows),
    )


def scan(
    client: HdfsClient,
    paths: Dict[str, int],
    schema: TableSchema,
    codec_name: str = "none",
    columns: Optional[Sequence[int]] = None,
    stats: Optional[ScanStats] = None,
    cache=None,
) -> Iterator[Tuple[object, ...]]:
    """Scan, decoding only the requested columns.

    Unrequested columns come back as None placeholders so tuple shape
    matches the schema (the executor projects by position).
    """
    ncols = len(schema.columns)
    for row_count, vectors in scan_blocks(
        client, paths, schema, codec_name, columns, stats, cache
    ):
        # Materialize each typed vector to Python values once per block,
        # not once per row (the per-vector tolist() is itself cached, so
        # a decode-cache hit does not even pay the transposition again).
        plain = [
            as_list(vectors[i]) if i in vectors else None for i in range(ncols)
        ]
        for r in range(row_count):
            yield tuple(
                col[r] if col is not None else None for col in plain
            )


def scan_blocks(
    client: HdfsClient,
    paths: Dict[str, int],
    schema: TableSchema,
    codec_name: str = "none",
    columns: Optional[Sequence[int]] = None,
    stats: Optional[ScanStats] = None,
    cache=None,
) -> Iterator[Tuple[int, Dict[int, List[object]]]]:
    """Yield ``(row_count, {column_index: values})`` per storage block,
    only for the requested columns — the batch executor's scan entry."""
    ncols = len(schema.columns)
    wanted = sorted(set(columns)) if columns is not None else list(range(ncols))
    if not wanted:
        wanted = [0]  # must read something to know the row count
    # Group logical lengths back onto column indexes.
    by_column: Dict[int, Tuple[str, int]] = {}
    for path, length in paths.items():
        try:
            suffix = path.rsplit(".c", 1)[1]
            by_column[int(suffix)] = (path, length)
        except (IndexError, ValueError) as exc:
            raise StorageError(f"not a CO column path: {path}") from exc
    codec = get_codec(codec_name)
    iterators = {}
    for index in wanted:
        if index not in by_column:
            raise StorageError(f"missing column file for column {index}")
        path, logical_length = by_column[index]
        iterators[index] = _column_blocks(
            client, path, logical_length, schema, index, codec, codec_name,
            stats, cache,
        )
    while True:
        vectors: Dict[int, List[object]] = {}
        row_count = None
        done = False
        for index in wanted:
            block = next(iterators[index], None)
            if block is None:
                done = True
                break
            vectors[index] = block
            if row_count is None:
                row_count = len(block)
            elif row_count != len(block):
                raise StorageError("column files disagree on block row counts")
        if done:
            break
        assert row_count is not None
        yield row_count, vectors


def _column_blocks(
    client: HdfsClient,
    path: str,
    logical_length: int,
    schema: TableSchema,
    column_index: int,
    codec,
    codec_name: str,
    stats: Optional[ScanStats],
    cache,
) -> Iterator[List[object]]:
    if logical_length <= 0:
        return
    column = schema.columns[column_index]
    if cache is None:
        data = client.read_file(path, logical_length)
        for row_count, payload in iter_blocks(data, codec, stats):
            values, _ = decode_column(payload, 0, row_count, column)
            yield values
        return
    key = ("co", path, client.write_epoch(path), codec_name)
    entry = cache.open_entry(key)
    # Serve the cached prefix up to the transaction-visible length (the
    # logical length always falls on a block boundary: appends write
    # whole blocks).
    served = 0
    for block in entry.blocks:
        if served + block.compressed_bytes > logical_length:
            break
        cache.replay(block, stats)
        served += block.compressed_bytes
        yield block.data
    if served >= logical_length:
        return
    # Decode (and cache) the appended tail only. Decoding stays lazy so
    # a consumer that abandons the scan charges exactly what the row
    # path would.
    reader = client.open(path)
    reader.seek(served)
    remote_before = client.remote_bytes_read
    data = reader.read(logical_length - served)
    remote_total = client.remote_bytes_read - remote_before
    tail_len = len(data)
    consumed = 0
    for row_count, payload, framed, uncompressed in iter_framed_blocks(
        data, codec, stats
    ):
        start = consumed
        consumed += framed
        # Telescoping proportional split of the tail read's remote bytes
        # over its blocks — exact-summing without knowing the block count.
        remote = (
            remote_total * consumed // tail_len
            - remote_total * start // tail_len
        )
        values, _ = decode_column(payload, 0, row_count, column)
        if entry.end_offset == served + start:  # still contiguous: cacheable
            before = entry.nbytes
            entry.append(
                CachedBlock(
                    row_count=row_count,
                    compressed_bytes=framed,
                    uncompressed_bytes=uncompressed,
                    remote_bytes=remote,
                    data=values,
                )
            )
            cache.misses += 1
            cache.account(entry, entry.nbytes - before)
        yield values
