"""CO: column-oriented storage, one segment file per column.

Each column's values are densely packed into their own series of blocks
in their own HDFS file, so a scan touches only the files of the columns
the query needs and compression sees homogeneous data (the paper notes
"notably higher compression ratios than row-oriented tables").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.errors import StorageError
from repro.hdfs import HdfsClient
from repro.storage.base import (
    DEFAULT_BLOCK_ROWS,
    ScanStats,
    WriteResult,
    batched,
    decode_column,
    encode_column,
    iter_blocks,
    pack_block,
)
from repro.storage.compression import get_codec

name = "co"


def column_path(base_path: str, column_index: int) -> str:
    return f"{base_path}.c{column_index}"


def write(
    client: HdfsClient,
    base_path: str,
    rows: Sequence[Sequence[object]],
    schema: TableSchema,
    codec_name: str = "none",
    append: bool = False,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> WriteResult:
    """Write rows as per-column files ``<base>.c<i>``."""
    codec = get_codec(codec_name)
    uncompressed_total = 0
    paths: Dict[str, int] = {}
    per_column_data: List[bytearray] = [bytearray() for _ in schema.columns]
    for block in batched(rows, block_rows):
        for i, column in enumerate(schema.columns):
            payload = bytearray()
            encode_column([row[i] for row in block], column, payload)
            uncompressed_total += len(payload)
            per_column_data[i] += pack_block(bytes(payload), len(block), codec)
    for i, data in enumerate(per_column_data):
        path = column_path(base_path, i)
        if append and client.exists(path):
            writer = client.append(path)
        else:
            writer = client.create(path)
        writer.write(bytes(data))
        writer.close()
        paths[path] = client.file_status(path).length
    return WriteResult(
        paths=paths,
        primary_path=column_path(base_path, 0),
        uncompressed_bytes=uncompressed_total,
        tupcount=len(rows),
    )


def scan(
    client: HdfsClient,
    paths: Dict[str, int],
    schema: TableSchema,
    codec_name: str = "none",
    columns: Optional[Sequence[int]] = None,
    stats: Optional[ScanStats] = None,
) -> Iterator[Tuple[object, ...]]:
    """Scan, decoding only the requested columns.

    Unrequested columns come back as None placeholders so tuple shape
    matches the schema (the executor projects by position).
    """
    ncols = len(schema.columns)
    wanted = sorted(set(columns)) if columns is not None else list(range(ncols))
    if not wanted:
        wanted = [0]  # must read something to know the row count
    # Group logical lengths back onto column indexes.
    by_column: Dict[int, Tuple[str, int]] = {}
    for path, length in paths.items():
        try:
            suffix = path.rsplit(".c", 1)[1]
            by_column[int(suffix)] = (path, length)
        except (IndexError, ValueError) as exc:
            raise StorageError(f"not a CO column path: {path}") from exc
    codec = get_codec(codec_name)
    iterators = {}
    for index in wanted:
        if index not in by_column:
            raise StorageError(f"missing column file for column {index}")
        path, logical_length = by_column[index]
        iterators[index] = _column_blocks(
            client, path, logical_length, schema, index, codec, stats
        )
    while True:
        vectors: Dict[int, List[object]] = {}
        row_count = None
        done = False
        for index in wanted:
            block = next(iterators[index], None)
            if block is None:
                done = True
                break
            vectors[index] = block
            if row_count is None:
                row_count = len(block)
            elif row_count != len(block):
                raise StorageError("column files disagree on block row counts")
        if done:
            break
        assert row_count is not None
        for r in range(row_count):
            yield tuple(
                vectors[i][r] if i in vectors else None for i in range(ncols)
            )


def _column_blocks(
    client: HdfsClient,
    path: str,
    logical_length: int,
    schema: TableSchema,
    column_index: int,
    codec,
    stats: Optional[ScanStats],
) -> Iterator[List[object]]:
    if logical_length <= 0:
        return
    data = client.read_file(path, logical_length)
    column = schema.columns[column_index]
    for row_count, payload in iter_blocks(data, codec, stats):
        values, _ = decode_column(payload, 0, row_count, column)
        yield values
