"""Registry mapping storage-format names to their modules.

Every format module exposes the same interface::

    write(client, base_path, rows, schema, codec_name, append, block_rows)
        -> WriteResult
    scan(client, paths, schema, codec_name, columns, stats, cache)
        -> Iterator[tuple]
    scan_blocks(client, paths, schema, codec_name, columns, stats, cache)
        -> Iterator[(row_count, {column_index: values})]

``scan_blocks`` is the vectorized entry: it yields decoded column
vectors block-at-a-time for the batch executor. ``cache`` is an
optional ``storage.cache.BlockDecodeCache`` that both entries use to
skip re-reading + re-decoding unchanged file prefixes.
"""

from __future__ import annotations

from typing import List

from repro.errors import StorageError
from repro.storage import ao, co, parquet

_FORMATS = {module.name: module for module in (ao, co, parquet)}


def get_format(name: str):
    """Return the format module for ``name`` ('ao', 'co', 'parquet')."""
    module = _FORMATS.get(name.lower())
    if module is None:
        raise StorageError(
            f"unknown storage format {name!r}; available: {sorted(_FORMATS)}"
        )
    return module


def list_formats() -> List[str]:
    return sorted(_FORMATS)
