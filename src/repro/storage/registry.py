"""Registry mapping storage-format names to their modules.

Every format module exposes the same interface::

    write(client, base_path, rows, schema, codec_name, append, block_rows)
        -> WriteResult
    scan(client, paths, schema, codec_name, columns, stats)
        -> Iterator[tuple]
"""

from __future__ import annotations

from typing import List

from repro.errors import StorageError
from repro.storage import ao, co, parquet

_FORMATS = {module.name: module for module in (ao, co, parquet)}


def get_format(name: str):
    """Return the format module for ``name`` ('ao', 'co', 'parquet')."""
    module = _FORMATS.get(name.lower())
    if module is None:
        raise StorageError(
            f"unknown storage format {name!r}; available: {sorted(_FORMATS)}"
        )
    return module


def list_formats() -> List[str]:
    return sorted(_FORMATS)
