"""Parquet-like storage: PAX row groups in a single file.

Like CO the data is vertically partitioned, but columns live together in
row groups of one file instead of separate files (paper Section 2.5).
Each self-describing row group is:

    group header: magic(2) | row_count(4) | ncols(4)
    per-column directory: uncompressed_len(4) | compressed_len(4)
    column chunks back-to-back

Readers seek over the chunks of unneeded columns, so only the projected
columns' bytes are fetched and decompressed. Nested values (Python lists)
are supported natively inside any text column via a tagged encoding —
Parquet's headline feature in miniature.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.errors import StorageError
from repro.hdfs import HdfsClient
from repro.storage.base import (
    DEFAULT_BLOCK_ROWS,
    ScanStats,
    WriteResult,
    batched,
    decode_column,
    encode_column,
)
from repro.storage.compression import get_codec

name = "parquet"

GROUP_MAGIC = 0xA002
_GROUP_HEADER = struct.Struct("<HII")
_CHUNK_DIR = struct.Struct("<II")


def write(
    client: HdfsClient,
    base_path: str,
    rows: Sequence[Sequence[object]],
    schema: TableSchema,
    codec_name: str = "none",
    append: bool = False,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> WriteResult:
    """Write rows as a sequence of row groups."""
    codec = get_codec(codec_name)
    uncompressed_total = 0
    data = bytearray()
    for group in batched(rows, block_rows):
        chunks: List[bytes] = []
        directory = bytearray()
        for i, column in enumerate(schema.columns):
            payload = bytearray()
            encode_column([row[i] for row in group], column, payload)
            uncompressed_total += len(payload)
            compressed = codec.compress(bytes(payload))
            directory += _CHUNK_DIR.pack(len(payload), len(compressed))
            chunks.append(compressed)
        data += _GROUP_HEADER.pack(GROUP_MAGIC, len(group), len(schema.columns))
        data += bytes(directory)
        for chunk in chunks:
            data += chunk
    if append and client.exists(base_path):
        writer = client.append(base_path)
    else:
        writer = client.create(base_path)
    writer.write(bytes(data))
    writer.close()
    new_length = client.file_status(base_path).length
    return WriteResult(
        paths={base_path: new_length},
        primary_path=base_path,
        uncompressed_bytes=uncompressed_total,
        tupcount=len(rows),
    )


def scan(
    client: HdfsClient,
    paths: Dict[str, int],
    schema: TableSchema,
    codec_name: str = "none",
    columns: Optional[Sequence[int]] = None,
    stats: Optional[ScanStats] = None,
) -> Iterator[Tuple[object, ...]]:
    """Scan row groups, reading only the projected columns' chunks."""
    ncols = len(schema.columns)
    wanted = sorted(set(columns)) if columns is not None else list(range(ncols))
    if not wanted:
        wanted = [0]
    codec = get_codec(codec_name)
    for path, logical_length in paths.items():
        if logical_length <= 0:
            continue
        reader = client.open(path)
        offset = 0
        while offset < logical_length:
            reader.seek(offset)
            header = reader.read(_GROUP_HEADER.size)
            if len(header) < _GROUP_HEADER.size:
                raise StorageError("truncated row-group header")
            magic, row_count, file_ncols = _GROUP_HEADER.unpack(header)
            if magic != GROUP_MAGIC:
                raise StorageError(f"bad row-group magic 0x{magic:04x}")
            if file_ncols != ncols:
                raise StorageError("row group column count != schema")
            directory_raw = reader.read(_CHUNK_DIR.size * ncols)
            directory = [
                _CHUNK_DIR.unpack_from(directory_raw, i * _CHUNK_DIR.size)
                for i in range(ncols)
            ]
            chunks_start = offset + _GROUP_HEADER.size + len(directory_raw)
            if stats is not None:
                stats.compressed_bytes += _GROUP_HEADER.size + len(directory_raw)
                stats.rows += row_count
                stats.blocks += 1
            vectors: Dict[int, List[object]] = {}
            chunk_offset = chunks_start
            for i in range(ncols):
                uncompressed_len, compressed_len = directory[i]
                if i in wanted:
                    reader.seek(chunk_offset)
                    compressed = reader.read(compressed_len)
                    payload = codec.decompress(compressed)
                    if len(payload) != uncompressed_len:
                        raise StorageError("chunk failed decompression check")
                    values, _ = decode_column(payload, 0, row_count, schema.columns[i])
                    vectors[i] = values
                    if stats is not None:
                        stats.compressed_bytes += compressed_len
                        stats.uncompressed_bytes += uncompressed_len
                chunk_offset += compressed_len
            for r in range(row_count):
                yield tuple(
                    vectors[i][r] if i in vectors else None for i in range(ncols)
                )
            offset = chunk_offset
