"""Parquet-like storage: PAX row groups in a single file.

Like CO the data is vertically partitioned, but columns live together in
row groups of one file instead of separate files (paper Section 2.5).
Each self-describing row group is:

    group header: magic(2) | row_count(4) | ncols(4)
    per-column directory: uncompressed_len(4) | compressed_len(4)
    column chunks back-to-back

Readers seek over the chunks of unneeded columns, so only the projected
columns' bytes are fetched and decompressed. Nested values (Python lists)
are supported natively inside any text column via a tagged encoding —
Parquet's headline feature in miniature.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.columnar import as_list
from repro.errors import StorageError
from repro.hdfs import HdfsClient
from repro.storage.base import (
    DEFAULT_BLOCK_ROWS,
    ScanStats,
    WriteResult,
    batched,
    decode_column,
    encode_column,
)
from repro.storage.cache import CachedBlock
from repro.storage.compression import get_codec

name = "parquet"

GROUP_MAGIC = 0xA002
_GROUP_HEADER = struct.Struct("<HII")
_CHUNK_DIR = struct.Struct("<II")


def write(
    client: HdfsClient,
    base_path: str,
    rows: Sequence[Sequence[object]],
    schema: TableSchema,
    codec_name: str = "none",
    append: bool = False,
    block_rows: int = DEFAULT_BLOCK_ROWS,
) -> WriteResult:
    """Write rows as a sequence of row groups."""
    codec = get_codec(codec_name)
    uncompressed_total = 0
    data = bytearray()
    for group in batched(rows, block_rows):
        chunks: List[bytes] = []
        directory = bytearray()
        for i, column in enumerate(schema.columns):
            payload = bytearray()
            encode_column([row[i] for row in group], column, payload)
            uncompressed_total += len(payload)
            compressed = codec.compress(bytes(payload))
            directory += _CHUNK_DIR.pack(len(payload), len(compressed))
            chunks.append(compressed)
        data += _GROUP_HEADER.pack(GROUP_MAGIC, len(group), len(schema.columns))
        data += bytes(directory)
        for chunk in chunks:
            data += chunk
    if append and client.exists(base_path):
        writer = client.append(base_path)
    else:
        writer = client.create(base_path)
    writer.write(bytes(data))
    writer.close()
    new_length = client.file_status(base_path).length
    return WriteResult(
        paths={base_path: new_length},
        primary_path=base_path,
        uncompressed_bytes=uncompressed_total,
        tupcount=len(rows),
    )


def scan(
    client: HdfsClient,
    paths: Dict[str, int],
    schema: TableSchema,
    codec_name: str = "none",
    columns: Optional[Sequence[int]] = None,
    stats: Optional[ScanStats] = None,
    cache=None,
) -> Iterator[Tuple[object, ...]]:
    """Scan row groups, reading only the projected columns' chunks."""
    ncols = len(schema.columns)
    for row_count, vectors in scan_blocks(
        client, paths, schema, codec_name, columns, stats, cache
    ):
        # One tolist() per typed vector per group instead of a per-row
        # __getitem__ (the materialized view is cached on the vector).
        plain = [
            as_list(vectors[i]) if i in vectors else None for i in range(ncols)
        ]
        for r in range(row_count):
            yield tuple(
                col[r] if col is not None else None for col in plain
            )


def scan_blocks(
    client: HdfsClient,
    paths: Dict[str, int],
    schema: TableSchema,
    codec_name: str = "none",
    columns: Optional[Sequence[int]] = None,
    stats: Optional[ScanStats] = None,
    cache=None,
) -> Iterator[Tuple[int, Dict[int, List[object]]]]:
    """Yield ``(row_count, {column_index: values})`` per row group.

    With a decode cache, group headers/directories and decoded column
    chunks are cached per ``(path, write_epoch)``; chunks for columns a
    previous scan did not project are decoded (and added) lazily.
    """
    ncols = len(schema.columns)
    wanted = sorted(set(columns)) if columns is not None else list(range(ncols))
    if not wanted:
        wanted = [0]
    codec = get_codec(codec_name)
    for path, logical_length in paths.items():
        if logical_length <= 0:
            continue
        reader = client.open(path)
        offset = 0
        if cache is not None:
            key = ("parquet", path, client.write_epoch(path), codec_name)
            entry = cache.open_entry(key)
            # Serve cached row groups inside the visible prefix.
            for block in entry.blocks:
                if offset + block.compressed_bytes > logical_length:
                    break
                detail = block.detail
                row_count = block.row_count
                if stats is not None:
                    stats.rows += row_count
                    stats.blocks += 1
                cache.replay_bytes(
                    stats, detail["header_bytes"], 0, detail["header_remote"]
                )
                vectors: Dict[int, List[object]] = {}
                directory = detail["directory"]
                decoded = detail["columns"]
                chunk_offset = detail["chunks_start"]
                for i in range(ncols):
                    uncompressed_len, compressed_len = directory[i]
                    if i in wanted:
                        hit = decoded.get(i)
                        if hit is not None:
                            values, chunk_remote = hit
                            cache.replay_bytes(
                                stats, compressed_len, uncompressed_len,
                                chunk_remote,
                            )
                        else:
                            values, chunk_remote = _read_chunk(
                                client, reader, chunk_offset, compressed_len,
                                uncompressed_len, row_count,
                                schema.columns[i], codec, stats,
                            )
                            decoded[i] = (values, chunk_remote)
                            added = max(uncompressed_len, 64)
                            entry.nbytes += added
                            cache.misses += 1
                            cache.account(entry, added)
                        vectors[i] = values
                    chunk_offset += compressed_len
                yield row_count, vectors
                offset += block.compressed_bytes
        while offset < logical_length:
            reader.seek(offset)
            remote_before = client.remote_bytes_read
            header = reader.read(_GROUP_HEADER.size)
            if len(header) < _GROUP_HEADER.size:
                raise StorageError("truncated row-group header")
            magic, row_count, file_ncols = _GROUP_HEADER.unpack(header)
            if magic != GROUP_MAGIC:
                raise StorageError(f"bad row-group magic 0x{magic:04x}")
            if file_ncols != ncols:
                raise StorageError("row group column count != schema")
            directory_raw = reader.read(_CHUNK_DIR.size * ncols)
            header_remote = client.remote_bytes_read - remote_before
            directory = [
                _CHUNK_DIR.unpack_from(directory_raw, i * _CHUNK_DIR.size)
                for i in range(ncols)
            ]
            chunks_start = offset + _GROUP_HEADER.size + len(directory_raw)
            if stats is not None:
                stats.compressed_bytes += _GROUP_HEADER.size + len(directory_raw)
                stats.rows += row_count
                stats.blocks += 1
            vectors = {}
            decoded = {}
            chunk_offset = chunks_start
            for i in range(ncols):
                uncompressed_len, compressed_len = directory[i]
                if i in wanted:
                    values, chunk_remote = _read_chunk(
                        client, reader, chunk_offset, compressed_len,
                        uncompressed_len, row_count, schema.columns[i],
                        codec, stats,
                    )
                    vectors[i] = values
                    decoded[i] = (values, chunk_remote)
                chunk_offset += compressed_len
            if cache is not None and entry.end_offset == offset:
                before = entry.nbytes
                entry.append(
                    CachedBlock(
                        row_count=row_count,
                        compressed_bytes=chunk_offset - offset,
                        uncompressed_bytes=0,  # chunk bytes tracked below
                        remote_bytes=0,
                        data=None,
                        detail={
                            "header_bytes": _GROUP_HEADER.size
                            + len(directory_raw),
                            "header_remote": header_remote,
                            "directory": directory,
                            "chunks_start": chunks_start,
                            "columns": decoded,
                        },
                    )
                )
                entry.nbytes += sum(
                    max(directory[i][0], 64) for i in decoded
                )
                cache.misses += 1
                cache.account(entry, entry.nbytes - before)
            yield row_count, vectors
            offset = chunk_offset


def _read_chunk(
    client: HdfsClient,
    reader,
    chunk_offset: int,
    compressed_len: int,
    uncompressed_len: int,
    row_count: int,
    column,
    codec,
    stats: Optional[ScanStats],
) -> Tuple[List[object], int]:
    """Read + decode one column chunk; returns (values, remote bytes)."""
    reader.seek(chunk_offset)
    remote_before = client.remote_bytes_read
    compressed = reader.read(compressed_len)
    chunk_remote = client.remote_bytes_read - remote_before
    payload = codec.decompress(compressed)
    if len(payload) != uncompressed_len:
        raise StorageError("chunk failed decompression check")
    values, _ = decode_column(payload, 0, row_count, column)
    if stats is not None:
        stats.compressed_bytes += compressed_len
        stats.uncompressed_bytes += uncompressed_len
    return values, chunk_remote
