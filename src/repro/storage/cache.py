"""Segment-local LRU block decode cache.

Every scan used to re-read its segment files from simulated HDFS and
re-decompress + re-decode every block — by far the dominant *real*
wall-clock cost of repeated queries, even though the *simulated* clock
already modeled it. This cache keeps decoded blocks (column vectors for
CO/Parquet, row tuples for AO) keyed by

    (format, path, write_epoch, ...per-format detail)

where ``write_epoch`` is the HDFS namespace's per-path mutation counter
(bumped by truncate / delete / rename — the physical operations behind
transaction rollback, VACUUM and INSERT-over-truncated-garbage). Appends
do **not** bump the epoch: files are append-only, so previously decoded
blocks stay valid and a scan only reads + decodes the appended tail
(``_PrefixEntry`` grows monotonically). TRUNCATE TABLE and snapshot
isolation are handled by serving only the prefix of blocks inside the
caller's transaction-visible logical length, which always falls on a
block boundary.

Simulated-cost policy: by default (``charge_hits=True``) a cache hit
*replays* the exact compressed/uncompressed/remote byte counts the
original decode charged, so the simulated cost model — and therefore
every paper-shape benchmark figure — is unchanged by caching. Setting
the engine's ``cache_simulated_costs=False`` knob makes hits free on the
simulated clock too (they are recorded in the ``cached_*`` ScanStats
fields instead), modeling a real buffer cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.storage.base import ScanStats

#: Default cache capacity in (approximate, uncompressed) bytes.
DEFAULT_CAPACITY_BYTES = 64 << 20


@dataclass
class CachedBlock:
    """One decoded block plus the physical work its decode charged."""

    row_count: int
    #: Framed on-disk size (header + compressed payload) — also the
    #: file-offset advance of this block.
    compressed_bytes: int
    uncompressed_bytes: int
    #: Bytes of this block's fetch served from a non-local HDFS replica.
    remote_bytes: int
    #: CO/Parquet: the decoded typed vector (``repro.columnar.vector`` —
    #: IntVector/FloatVector/DictVector/...; dictionary columns stay
    #: encoded, so cached blocks never pin materialized Python strings);
    #: AO: a list of row tuples.
    data: object
    #: Parquet only: per-group chunk directory + lazily decoded columns.
    detail: object = None


class _PrefixEntry:
    """Decoded blocks covering the byte prefix [0, end_offset) of a file."""

    __slots__ = ("key", "blocks", "end_offset", "nbytes")

    def __init__(self, key: tuple) -> None:
        self.key = key
        self.blocks: List[CachedBlock] = []
        self.end_offset = 0
        self.nbytes = 0

    def append(self, block: CachedBlock) -> None:
        self.blocks.append(block)
        self.end_offset += block.compressed_bytes
        self.nbytes += max(block.uncompressed_bytes, 64)


class BlockDecodeCache:
    """LRU over per-file prefix entries of decoded storage blocks.

    One instance lives on the engine; keys embed the segment-owned file
    path, so entries are effectively segment-local (each segment writes
    and reads its own ``.../segN/...`` files).
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        charge_hits: bool = True,
    ) -> None:
        self.capacity_bytes = capacity_bytes
        #: When True (default), hits replay simulated charges so figures
        #: are unchanged; when False, hits cost nothing on the sim clock.
        self.charge_hits = charge_hits
        self._entries: "OrderedDict[tuple, _PrefixEntry]" = OrderedDict()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.hit_blocks = 0

    # ----------------------------------------------------------------- lookup
    def entry(self, key: tuple) -> Optional[_PrefixEntry]:
        """Return the prefix entry for ``key`` (LRU-touching it), if any."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def open_entry(self, key: tuple) -> _PrefixEntry:
        """Return the entry for ``key``, creating an empty one on miss."""
        entry = self._entries.get(key)
        if entry is None:
            entry = _PrefixEntry(key)
            self._entries[key] = entry
        else:
            self._entries.move_to_end(key)
        return entry

    def account(self, entry: _PrefixEntry, added_bytes: int) -> None:
        """Record entry growth and evict LRU entries over capacity."""
        if self._entries.get(entry.key) is not entry:
            # Evicted (or superseded) while a scan was still filling it:
            # its bytes left the ledger when it was dropped, so growth of
            # the orphan must not be tracked — it dies with the scan.
            return
        self.total_bytes += added_bytes
        while self.total_bytes > self.capacity_bytes and len(self._entries) > 1:
            _key, evicted = self._entries.popitem(last=False)
            if evicted is entry:  # never evict the entry being filled
                self._entries[_key] = evicted
                self._entries.move_to_end(_key, last=False)
                break
            self.total_bytes -= evicted.nbytes
            self.evictions += 1

    # ------------------------------------------------------------ stats replay
    def replay(self, block: CachedBlock, stats: Optional[ScanStats]) -> None:
        """Account one cache-hit block into ``stats`` per the charge policy."""
        self.hits += 1
        self.hit_blocks += 1
        if stats is None:
            return
        stats.rows += block.row_count
        stats.blocks += 1
        if self.charge_hits:
            stats.compressed_bytes += block.compressed_bytes
            stats.uncompressed_bytes += block.uncompressed_bytes
            stats.remote_bytes += block.remote_bytes
        else:
            stats.cached_compressed_bytes += block.compressed_bytes
            stats.cached_uncompressed_bytes += block.uncompressed_bytes

    def replay_bytes(
        self,
        stats: Optional[ScanStats],
        compressed: int,
        uncompressed: int,
        remote: int = 0,
    ) -> None:
        """Replay raw byte charges for a hit that is not a whole block
        (Parquet group headers / single column chunks)."""
        self.hits += 1
        if stats is None:
            return
        if self.charge_hits:
            stats.compressed_bytes += compressed
            stats.uncompressed_bytes += uncompressed
            stats.remote_bytes += remote
        else:
            stats.cached_compressed_bytes += compressed
            stats.cached_uncompressed_bytes += uncompressed

    # ------------------------------------------------------------------ misc
    def clear(self) -> None:
        self._entries.clear()
        self.total_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)


def distribute_remote_bytes(
    total_remote: int, sizes: List[int]
) -> List[int]:
    """Split a fetch's remote-replica byte count across the blocks it
    covered, proportionally to their framed sizes, exactly summing to
    ``total_remote`` (the remainder lands on the last block)."""
    if not sizes:
        return []
    if total_remote == 0:
        return [0] * len(sizes)
    span = sum(sizes)
    out = []
    assigned = 0
    for size in sizes[:-1]:
        share = total_remote * size // max(span, 1)
        out.append(share)
        assigned += share
    out.append(total_remote - assigned)
    return out
