"""Read-optimized storage formats on HDFS (paper Section 2.5).

Three formats, selectable per table (or per partition):

* **AO** — row-oriented append-only, optimized for full scans and bulk
  appends;
* **CO** — column-oriented, one segment file per column, best compression
  and column-projection behaviour;
* **Parquet** — PAX-like: columns stored vertically *within* row groups
  of a single file.

All formats compress block-by-block with a codec from
:mod:`repro.storage.compression`.
"""

from repro.storage.base import ScanStats, WriteResult
from repro.storage.compression import Codec, available_codecs, get_codec
from repro.storage.registry import get_format, list_formats

__all__ = [
    "Codec",
    "ScanStats",
    "WriteResult",
    "available_codecs",
    "get_codec",
    "get_format",
    "list_formats",
]
