"""Block compression codecs and their simulated CPU costs.

Substitutions (documented in DESIGN.md): the real quicklz/snappy are not
available offline, so **zlib level 1 stands in for both** — what matters
for the paper's Figure 11 is the *fast-light vs slow-dense* trade-off,
which zlib's level knob reproduces. RLE is implemented natively (it is
HAWQ's CO-only codec for highly repetitive columns).

Each codec carries per-uncompressed-byte CPU costs used by the simulated
clock; the byte *ratios* are real (actual compressed sizes of actual
data).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import StorageError


@dataclass(frozen=True)
class Codec:
    """One compression algorithm plus its simulated CPU price."""

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]
    #: Simulated seconds of CPU per *uncompressed* byte.
    compress_cost: float
    decompress_cost: float


def _rle_compress(data: bytes) -> bytes:
    """Byte-level run-length encoding: (run_length u16, byte) pairs."""
    out = bytearray()
    i, n = 0, len(data)
    while i < n:
        byte = data[i]
        run = 1
        while i + run < n and data[i + run] == byte and run < 0xFFFF:
            run += 1
        out += struct.pack("<HB", run, byte)
        i += run
    return bytes(out)


def _rle_decompress(data: bytes) -> bytes:
    if len(data) % 3 != 0:
        raise StorageError("corrupt RLE stream")
    out = bytearray()
    for offset in range(0, len(data), 3):
        run, byte = struct.unpack_from("<HB", data, offset)
        out += bytes([byte]) * run
    return bytes(out)


def _zlib(level: int) -> Tuple[Callable, Callable]:
    return (
        lambda data, lv=level: zlib.compress(data, lv),
        zlib.decompress,
    )


_CODECS: Dict[str, Codec] = {}


def _register(codec: Codec) -> None:
    _CODECS[codec.name] = codec


_register(
    Codec(
        "none",
        compress=lambda data: data,
        decompress=lambda data: data,
        compress_cost=0.0,
        decompress_cost=0.0,
    )
)
# quicklz / snappy: fast-light codecs (zlib level 1 as the stand-in,
# priced like the real thing: ~GB/s class).
for fast_name in ("quicklz", "snappy"):
    compress, decompress = _zlib(1)
    _register(
        Codec(
            fast_name,
            compress=compress,
            decompress=decompress,
            compress_cost=1.6e-9,
            decompress_cost=0.5e-9,
        )
    )
# zlib / gzip level 1, 5, 9: increasingly dense and CPU-hungry.
for base_name in ("zlib", "gzip"):
    for level, comp_cost, decomp_cost in (
        (1, 6e-9, 1.1e-9),
        (5, 13e-9, 1.9e-9),
        (9, 28e-9, 3.1e-9),
    ):
        compress, decompress = _zlib(level)
        _register(
            Codec(
                f"{base_name}{level}",
                compress=compress,
                decompress=decompress,
                compress_cost=comp_cost,
                decompress_cost=decomp_cost,
            )
        )
_register(
    Codec(
        "rle",
        compress=_rle_compress,
        decompress=_rle_decompress,
        compress_cost=1.0e-9,
        decompress_cost=0.4e-9,
    )
)


def get_codec(name: str, level: Optional[int] = None) -> Codec:
    """Look up a codec by name (optionally with a separate level)."""
    key = name.lower()
    if level is not None and key in ("zlib", "gzip"):
        key = f"{key}{level}"
    elif key in ("zlib", "gzip"):
        key = f"{key}1"
    codec = _CODECS.get(key)
    if codec is None:
        raise StorageError(
            f"unknown codec {name!r}; available: {sorted(_CODECS)}"
        )
    return codec


def available_codecs() -> List[str]:
    return sorted(_CODECS)
