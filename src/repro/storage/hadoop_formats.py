"""MapReduce Input/OutputFormats for HAWQ table files (paper Section 2.1).

"External systems can bypass HAWQ, and access directly the HAWQ table
files on HDFS. ... In addition, open MapReduce InputFormats and
OutputFormats for the underlying storage file formats are developed.
... For example, MapReduce can directly access table files on HDFS
instead of reading HAWQ data through SQL."

:class:`HawqTableInputFormat` turns a table's committed segment files
into MapReduce input splits (one per segfile lane, located at the
segment's host) and reads them with the real storage-format decoders —
honouring the catalog's logical lengths, so an external job sees exactly
the committed rows. :class:`HawqTableOutputFormat` is the loading path:
it writes rows through the table's storage format into a new segment
file per segment and commits them in the catalog, transactionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.errors import UndefinedObject
from repro.storage import get_format


@dataclass(frozen=True)
class TableSplit:
    """One MapReduce input split over a HAWQ table."""

    table: str
    segment_id: int
    segfile_id: int
    paths: Tuple[Tuple[str, int], ...]  # (path, logical length)
    host: str


class HawqTableInputFormat:
    """Read a HAWQ table's files directly, without SQL."""

    def __init__(self, engine):
        self.engine = engine

    def get_splits(self, table: str) -> List[TableSplit]:
        """One split per committed segment file lane."""
        engine = self.engine
        snapshot = engine.txns.begin().statement_snapshot()
        relation = engine.catalog.lookup_relation(table, snapshot)
        if relation is None:
            raise UndefinedObject(f"relation {table!r} does not exist")
        names = [c for c, _ in relation.get("children", [])] or [table.lower()]
        splits: List[TableSplit] = []
        for name in names:
            for segfile in engine.catalog.segfiles(name, snapshot):
                segment = engine.segments[segfile["segment_id"]]
                splits.append(
                    TableSplit(
                        table=name,
                        segment_id=segfile["segment_id"],
                        segfile_id=segfile["segfile_id"],
                        paths=tuple(sorted(segfile["paths"].items())),
                        host=segment.effective_host(),
                    )
                )
        return splits

    def read_split(
        self, split: TableSplit, columns: Optional[Sequence[int]] = None
    ) -> Iterator[tuple]:
        """Decode one split's rows with the table's storage format."""
        engine = self.engine
        snapshot = engine.txns.begin().statement_snapshot()
        schema = engine.catalog.get_schema(split.table, snapshot)
        fmt = get_format(schema.storage_format)
        client = engine.hdfs.client(split.host)
        yield from fmt.scan(
            client,
            dict(split.paths),
            schema,
            schema.compression,
            columns=columns,
        )

    def read_table(self, table: str) -> Iterator[tuple]:
        """All committed rows, split by split."""
        for split in self.get_splits(table):
            yield from self.read_split(split)


class HawqTableOutputFormat:
    """Write rows into a HAWQ table from outside SQL (bulk exchange)."""

    def __init__(self, engine):
        self.engine = engine

    def write_table(self, table: str, rows: Sequence[tuple]) -> int:
        """Append rows transactionally; returns the row count."""
        session = self.engine.connect()
        snapshot_txn = self.engine.txns.begin()
        try:
            schema = self.engine.catalog.get_schema(
                table, snapshot_txn.statement_snapshot()
            )
        finally:
            self.engine.txns.commit(snapshot_txn)
        coerced = [schema.coerce_row(r) for r in rows]
        return session.load_rows(table, coerced)
