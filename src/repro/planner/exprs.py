"""Bound (resolved) expression nodes.

The semantic analyzer turns parser AST expressions into these: column
references become :class:`BVar` (relation index, column index), function
names are validated, aggregates become :class:`BAgg`, and subqueries
become :class:`BSubPlan` nodes for the decorrelation pass.

All nodes are dataclasses with structural equality — the aggregation
planner relies on it to match GROUP BY keys inside output expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import PlannerError

AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")
SCALAR_FUNCTIONS = (
    "substring",
    "upper",
    "lower",
    "length",
    "abs",
    "round",
    "coalesce",
    "nullif",
)


@dataclass(frozen=True)
class BoundExpr:
    """Base class of all bound expressions."""


@dataclass(frozen=True)
class BConst(BoundExpr):
    value: object


@dataclass(frozen=True)
class BInterval(BoundExpr):
    quantity: float
    unit: str  # year | month | day


@dataclass(frozen=True)
class BVar(BoundExpr):
    """A column of relation ``rel`` in the query ``level`` scopes out.

    ``level`` 0 is the current query; >0 marks a correlated reference
    into an enclosing query (resolved away by decorrelation).
    """

    rel: int
    col: int
    name: str = ""
    level: int = 0


@dataclass(frozen=True)
class BParam(BoundExpr):
    """Placeholder for an InitPlan result (uncorrelated scalar subquery)."""

    index: int


@dataclass(frozen=True)
class BOp(BoundExpr):
    op: str  # and or = <> < <= > >= + - * / % ||
    left: BoundExpr
    right: BoundExpr


@dataclass(frozen=True)
class BNot(BoundExpr):
    operand: BoundExpr


@dataclass(frozen=True)
class BFunc(BoundExpr):
    name: str
    args: Tuple[BoundExpr, ...] = ()


@dataclass(frozen=True)
class BAgg(BoundExpr):
    func: str  # count sum avg min max
    arg: Optional[BoundExpr] = None  # None => count(*)
    distinct: bool = False


@dataclass(frozen=True)
class BAggRef(BoundExpr):
    """Reference to aggregate slot ``index`` above a HashAgg node."""

    index: int


@dataclass(frozen=True)
class BGroupRef(BoundExpr):
    """Reference to group-key slot ``index`` above a HashAgg node."""

    index: int


@dataclass(frozen=True)
class BTargetRef(BoundExpr):
    """Reference to projected target slot ``index`` above a Project node."""

    index: int


@dataclass(frozen=True)
class BCase(BoundExpr):
    whens: Tuple[Tuple[BoundExpr, BoundExpr], ...]
    else_result: Optional[BoundExpr] = None


@dataclass(frozen=True)
class BCast(BoundExpr):
    operand: BoundExpr
    type_name: str


@dataclass(frozen=True)
class BLike(BoundExpr):
    operand: BoundExpr
    pattern: str  # patterns are literal in the supported dialect
    negated: bool = False


@dataclass(frozen=True)
class BIn(BoundExpr):
    operand: BoundExpr
    items: Tuple[BoundExpr, ...]
    negated: bool = False


@dataclass(frozen=True)
class BIsNull(BoundExpr):
    operand: BoundExpr
    negated: bool = False


@dataclass(frozen=True)
class BExtract(BoundExpr):
    part: str
    operand: BoundExpr


@dataclass(frozen=True)
class BSubPlan(BoundExpr):
    """A subquery expression awaiting decorrelation.

    ``kind``: 'scalar' | 'in' | 'exists'. ``test`` is the left operand of
    IN. The LogicalQuery is stored by reference (not hashed/compared).
    """

    kind: str
    query: object = field(compare=False, hash=False)  # LogicalQuery
    test: Optional[BoundExpr] = None
    negated: bool = False


# ----------------------------------------------------------------- utilities
def conjuncts(expr: Optional[BoundExpr]) -> List[BoundExpr]:
    """Flatten a boolean expression into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BOp) and expr.op == "and":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def make_conjunction(parts: List[BoundExpr]) -> Optional[BoundExpr]:
    if not parts:
        return None
    result = parts[0]
    for part in parts[1:]:
        result = BOp(op="and", left=result, right=part)
    return result


def walk(expr: BoundExpr) -> Iterator[BoundExpr]:
    """Yield the expression and all of its descendants."""
    yield expr
    if isinstance(expr, BOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, BNot):
        yield from walk(expr.operand)
    elif isinstance(expr, BFunc):
        for arg in expr.args:
            yield from walk(arg)
    elif isinstance(expr, BAgg) and expr.arg is not None:
        yield from walk(expr.arg)
    elif isinstance(expr, BCase):
        for cond, result in expr.whens:
            yield from walk(cond)
            yield from walk(result)
        if expr.else_result is not None:
            yield from walk(expr.else_result)
    elif isinstance(expr, (BCast, BExtract, BIsNull, BLike)):
        yield from walk(expr.operand)
    elif isinstance(expr, BIn):
        yield from walk(expr.operand)
        for item in expr.items:
            yield from walk(item)
    elif isinstance(expr, BSubPlan):
        if expr.test is not None:
            yield from walk(expr.test)


def transform(
    expr: BoundExpr, fn: Callable[[BoundExpr], Optional[BoundExpr]]
) -> BoundExpr:
    """Bottom-up rewrite: ``fn`` may return a replacement or None to keep.

    ``fn`` is applied to children first, then to the rebuilt node.
    """
    rebuilt = _rebuild(expr, fn)
    replacement = fn(rebuilt)
    return replacement if replacement is not None else rebuilt


def _rebuild(expr: BoundExpr, fn) -> BoundExpr:
    if isinstance(expr, BOp):
        return BOp(expr.op, transform(expr.left, fn), transform(expr.right, fn))
    if isinstance(expr, BNot):
        return BNot(transform(expr.operand, fn))
    if isinstance(expr, BFunc):
        return BFunc(expr.name, tuple(transform(a, fn) for a in expr.args))
    if isinstance(expr, BAgg):
        arg = transform(expr.arg, fn) if expr.arg is not None else None
        return BAgg(expr.func, arg, expr.distinct)
    if isinstance(expr, BCase):
        whens = tuple(
            (transform(c, fn), transform(r, fn)) for c, r in expr.whens
        )
        else_result = (
            transform(expr.else_result, fn) if expr.else_result is not None else None
        )
        return BCase(whens, else_result)
    if isinstance(expr, BCast):
        return BCast(transform(expr.operand, fn), expr.type_name)
    if isinstance(expr, BExtract):
        return BExtract(expr.part, transform(expr.operand, fn))
    if isinstance(expr, BIsNull):
        return BIsNull(transform(expr.operand, fn), expr.negated)
    if isinstance(expr, BLike):
        return BLike(transform(expr.operand, fn), expr.pattern, expr.negated)
    if isinstance(expr, BIn):
        return BIn(
            transform(expr.operand, fn),
            tuple(transform(i, fn) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, BSubPlan):
        test = transform(expr.test, fn) if expr.test is not None else None
        return BSubPlan(expr.kind, expr.query, test, expr.negated)
    return expr


def rewrite_post_agg(
    expr: BoundExpr,
    agg_index: dict,
    group_refs: dict,
) -> BoundExpr:
    """Rewrite an output expression for evaluation above a HashAgg.

    Top-down, so aggregate nodes are replaced *whole* (their arguments
    must never be rewritten — ``count(a)`` with ``GROUP BY a`` is still
    the aggregate over the raw column, not over the group slot).
    """
    if isinstance(expr, BAgg):
        return BAggRef(agg_index[expr])
    if expr in group_refs:
        return BGroupRef(group_refs[expr])

    def recurse(node: BoundExpr) -> BoundExpr:
        return rewrite_post_agg(node, agg_index, group_refs)

    if isinstance(expr, BOp):
        return BOp(expr.op, recurse(expr.left), recurse(expr.right))
    if isinstance(expr, BNot):
        return BNot(recurse(expr.operand))
    if isinstance(expr, BFunc):
        return BFunc(expr.name, tuple(recurse(a) for a in expr.args))
    if isinstance(expr, BCase):
        whens = tuple((recurse(c), recurse(r)) for c, r in expr.whens)
        else_result = (
            recurse(expr.else_result) if expr.else_result is not None else None
        )
        return BCase(whens, else_result)
    if isinstance(expr, BCast):
        return BCast(recurse(expr.operand), expr.type_name)
    if isinstance(expr, BExtract):
        return BExtract(expr.part, recurse(expr.operand))
    if isinstance(expr, BIsNull):
        return BIsNull(recurse(expr.operand), expr.negated)
    if isinstance(expr, BLike):
        return BLike(recurse(expr.operand), expr.pattern, expr.negated)
    if isinstance(expr, BIn):
        return BIn(
            recurse(expr.operand),
            tuple(recurse(i) for i in expr.items),
            expr.negated,
        )
    return expr


def vars_of(expr: BoundExpr, level: int = 0) -> List[BVar]:
    """All BVars at the given correlation level."""
    return [
        node
        for node in walk(expr)
        if isinstance(node, BVar) and node.level == level
    ]


def rels_of(expr: BoundExpr) -> set:
    """Relation indexes referenced at level 0."""
    return {v.rel for v in vars_of(expr, 0)}


def has_aggregate(expr: BoundExpr) -> bool:
    return any(isinstance(node, BAgg) for node in walk(expr))


def has_subplan(expr: BoundExpr) -> bool:
    return any(isinstance(node, BSubPlan) for node in walk(expr))


def shift_rels(expr: BoundExpr, mapping: dict) -> BoundExpr:
    """Renumber level-0 relation indexes through ``mapping``."""

    def rewrite(node: BoundExpr) -> Optional[BoundExpr]:
        if isinstance(node, BVar) and node.level == 0 and node.rel in mapping:
            return replace(node, rel=mapping[node.rel])
        return None

    return transform(expr, rewrite)
