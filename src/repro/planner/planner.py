"""The cost-based parallel planner (paper Section 3).

Turns a decorrelated :class:`LogicalQuery` into a sliced
:class:`PhysicalPlan`:

* single-table predicates are pushed into scans, partitions eliminated;
* inner joins are ordered greedily by estimated output cardinality;
* motions (Broadcast / Redistribute / Gather) are inserted only where
  co-location does not already hold, choosing the cheaper of
  broadcast-vs-redistribute from estimated byte volumes;
* aggregation runs in two phases (local partial, redistribute on the
  group keys, final) unless rows are already co-located on the keys or a
  DISTINCT aggregate forces a single phase;
* a query whose predicates pin every distribution key of its only table
  is *directly dispatched* to the one segment that can hold the rows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.catalog.schema import hash_values
from repro.catalog.stats import TableStats
from repro.errors import PlannerError
from repro.planner import exprs as ex
from repro.planner.cost import Estimator
from repro.planner.decorrelate import decorrelate
from repro.planner.logical import (
    DerivedSource,
    LogicalQuery,
    RelEntry,
    SortKey,
    TableSource,
)
from repro.planner.physical import (
    Distribution,
    ExternalScan,
    Filter,
    HashAgg,
    HashJoin,
    Limit,
    Motion,
    NestLoopJoin,
    PhysicalPlan,
    PlanNode,
    Project,
    Result,
    SeqScan,
    Sort,
    SubqueryScan,
    expr_column_id,
    slice_plan,
)


@dataclass
class PlannerOptions:
    """Feature knobs, mostly for ablation benchmarks."""

    enable_direct_dispatch: bool = True
    enable_partition_elimination: bool = True
    enable_colocation: bool = True  # ablation: ignore existing distributions
    enable_broadcast: bool = True


class Planner:
    """Plans one LogicalQuery for a cluster of ``num_segments``."""

    def __init__(
        self,
        num_segments: int,
        stats: Optional[Dict[str, TableStats]] = None,
        options: Optional[PlannerOptions] = None,
        partition_children: Optional[Dict[str, List[Tuple[str, object]]]] = None,
    ):
        """``partition_children`` maps a partitioned parent table name to
        its [(child_name, Partition)] list (from the catalog)."""
        self.num_segments = num_segments
        self.estimator = Estimator(stats)
        self.options = options or PlannerOptions()
        self.partition_children = partition_children or {}
        self._motion_ids = itertools.count(1)

    # ------------------------------------------------------------- top level
    def plan(self, query: LogicalQuery) -> PhysicalPlan:
        decorrelate(query)
        # InitPlans from every nesting level are hoisted into one flat,
        # top-level list; _plan_block renumbers BParam references.
        self._pending_init_plans: List[LogicalQuery] = []
        root = self._plan_block(query)
        init_plans = []
        for init_query in self._pending_init_plans:
            sub_planner = Planner(
                num_segments=self.num_segments,
                stats=self.estimator.stats,
                options=self.options,
                partition_children=self.partition_children,
            )
            init_plans.append(sub_planner.plan(init_query))
        if root.dist.kind != "single":
            root = self._motion("gather", root)
        direct = self._direct_dispatch_segment(query)
        return slice_plan(
            root,
            query.output_names,
            init_plans=init_plans,
            num_segments=self.num_segments,
            direct_dispatch_segment=direct,
        )

    # ------------------------------------------------------------ block plan
    def _plan_block(self, query: LogicalQuery) -> PlanNode:
        self._hoist_init_plans(query)
        if not query.rels:
            return Result(exprs=[t for t, _ in query.targets])

        saved_ec = getattr(self, "_ec", None)
        self._ec = self._equivalence_classes(query)
        try:
            return self._plan_block_inner(query)
        finally:
            self._ec = saved_ec

    def _plan_block_inner(self, query: LogicalQuery) -> PlanNode:
        pool = list(query.quals)
        needed = self._needed_columns(query)
        nodes: Dict[int, PlanNode] = {}
        for index, rel in enumerate(query.rels):
            nodes[index] = self._plan_rel(index, rel, pool, needed)

        joined = self._join_all(query, nodes, pool)

        node = joined
        # Residual quals that could not be attached anywhere earlier
        # (e.g. WHERE predicates over left-join nullable columns).
        if pool:
            node = Filter(child=node, cond=ex.make_conjunction(pool))
            node.est_rows = max(joined.est_rows * 0.5, 1.0)
            node.est_width = joined.est_width

        if query.has_aggregates:
            node, rewrite = self._plan_aggregation(query, node)
        else:
            rewrite = lambda e: e

        targets = [rewrite(t) for t, _ in query.targets]
        node = self._plan_output(query, node, targets, rewrite)
        return node

    # ----------------------------------------------------- equivalence classes
    def _equivalence_classes(self, query: LogicalQuery) -> Dict:
        """Union-find over `col = col` predicates: a table hashed on
        p_partkey is co-located for a join on l_partkey when the two are
        equated, so distribution matching must work modulo equivalence."""
        parent: Dict = {}

        def find(x):
            while parent.get(x, x) != x:
                parent[x] = parent.get(parent[x], parent[x])
                x = parent[x]
            return x

        def union(a, b):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        quals = list(query.quals)
        for rel in query.rels:
            if rel.join_cond is not None and rel.join_type != "left":
                quals.extend(ex.conjuncts(rel.join_cond))
        for qual in quals:
            if (
                isinstance(qual, ex.BOp)
                and qual.op == "="
                and isinstance(qual.left, ex.BVar)
                and isinstance(qual.right, ex.BVar)
                and qual.left.level == 0
                and qual.right.level == 0
            ):
                union(("r", qual.left.rel, qual.left.col),
                      ("r", qual.right.rel, qual.right.col))
        return {key: find(key) for key in parent}

    def _canon(self, column_id):
        if column_id is None:
            return None
        ec = getattr(self, "_ec", None) or {}
        return ec.get(column_id, column_id)

    def _dist_matches(self, dist: Distribution, key_ids) -> bool:
        """Distribution co-location test modulo equivalence classes."""
        if dist.kind != "hashed" or not dist.keys:
            return False
        present = {self._canon(k) for k in key_ids if k is not None}
        return all(self._canon(k) in present for k in dist.keys)

    def _hoist_init_plans(self, query: LogicalQuery) -> None:
        """Move this block's InitPlans into the top-level list, shifting
        its BParam indexes to the flat numbering."""
        if not query.init_plans:
            return
        offset = len(self._pending_init_plans)
        self._pending_init_plans.extend(query.init_plans)
        query.init_plans = []
        if offset == 0:
            return

        def shift(expr: ex.BoundExpr) -> ex.BoundExpr:
            def fn(node: ex.BoundExpr):
                if isinstance(node, ex.BParam):
                    return ex.BParam(node.index + offset)
                return None

            return ex.transform(expr, fn)

        query.quals = [shift(q) for q in query.quals]
        query.targets = [(shift(t), name) for t, name in query.targets]
        query.group_by = [shift(g) for g in query.group_by]
        if query.having is not None:
            query.having = shift(query.having)
        for key in query.order_by:
            key.expr = shift(key.expr)
        for rel in query.rels:
            if rel.join_cond is not None:
                rel.join_cond = shift(rel.join_cond)

    # ----------------------------------------------------------------- scans
    def _needed_columns(self, query: LogicalQuery) -> Dict[int, Set[int]]:
        needed: Dict[int, Set[int]] = {i: set() for i in range(len(query.rels))}
        exprs: List[ex.BoundExpr] = []
        exprs.extend(t for t, _ in query.targets)
        exprs.extend(query.quals)
        exprs.extend(query.group_by)
        if query.having is not None:
            exprs.append(query.having)
        exprs.extend(k.expr for k in query.order_by)
        for rel in query.rels:
            if rel.join_cond is not None:
                exprs.append(rel.join_cond)
        for expr in exprs:
            for var in ex.vars_of(expr, level=0):
                if var.rel in needed:
                    needed[var.rel].add(var.col)
        return needed

    def _plan_rel(
        self,
        index: int,
        rel: RelEntry,
        pool: List[ex.BoundExpr],
        needed: Dict[int, Set[int]],
    ) -> PlanNode:
        # Pull this relation's single-table predicates out of the pool.
        mine = [q for q in pool if ex.rels_of(q) == {index} and not ex.has_aggregate(q)]
        for qual in mine:
            pool.remove(qual)
        cond = ex.make_conjunction(mine)

        if isinstance(rel.source, DerivedSource):
            sub = rel.source.query
            child = self._plan_block(sub)
            node = SubqueryScan(rel=index, child=child, ncols=len(sub.output_names))
            node.dist = self._translate_subquery_dist(child, sub, index)
            node.est_rows = child.est_rows
            node.est_width = child.est_width
            if cond is not None:
                wrapped = Filter(child=node, cond=cond)
                wrapped.est_rows = max(node.est_rows * 0.25, 1.0)
                wrapped.est_width = node.est_width
                node = wrapped
            return node

        source: TableSource = rel.source
        columns = sorted(needed.get(index, set()))
        if not columns:
            columns = [0]
        if source.external:
            pushed = [q for q in mine if self._pushable(q)]
            node = ExternalScan(
                rel=index,
                table=source,
                columns=columns,
                filter=cond,
                pushed_filters=pushed,
            )
        else:
            partitions, pruned = self._select_partitions(source, mine)
            node = SeqScan(
                rel=index,
                table=source,
                columns=columns,
                filter=cond,
                partitions=partitions,
                pruned_partitions=pruned,
            )
        schema = source.schema
        if schema.distribution.is_hash and self.options.enable_colocation:
            key_ids = tuple(
                ("r", index, schema.column_index(c))
                for c in schema.distribution.columns
            )
            node.dist = Distribution.hashed(key_ids)
        else:
            node.dist = Distribution.random()
        base_rows = self.estimator.table_rows(source)
        sel = self.estimator.selectivity(mine, source)
        node.est_rows = max(base_rows * sel, 1.0)
        node.est_width = self.estimator.table_width(source, len(columns))
        return node

    def _translate_subquery_dist(
        self, child: PlanNode, sub: LogicalQuery, rel_index: int
    ) -> Distribution:
        """Map an inner distribution onto the SubqueryScan's columns."""
        if child.dist.kind != "hashed":
            return Distribution.random()
        # The child's top is a Project with layout ('t', i); its dist keys
        # are ('t', i) ids. Map target position -> outer ('r', rel, i).
        keys = []
        for key in child.dist.keys:
            if key[0] != "t":
                return Distribution.random()
            keys.append(("r", rel_index, key[1]))
        return Distribution.hashed(keys)

    def _pushable(self, qual: ex.BoundExpr) -> bool:
        """Simple predicates a PXF connector can evaluate at the source."""
        if isinstance(qual, ex.BOp) and qual.op in ("=", "<", "<=", ">", ">="):
            sides = (qual.left, qual.right)
            has_var = any(isinstance(s, ex.BVar) for s in sides)
            has_const = any(isinstance(s, ex.BConst) for s in sides)
            return has_var and has_const
        return False

    def _select_partitions(
        self, source: TableSource, quals: List[ex.BoundExpr]
    ) -> Tuple[Optional[List[str]], List[str]]:
        children = self.partition_children.get(source.table_name)
        if not children:
            return None, []
        spec = source.schema.partition_spec
        if spec is None or not self.options.enable_partition_elimination:
            return [name for name, _ in children], []
        part_col = source.schema.column_index(spec.column)
        keep, pruned = [], []
        for child_name, partition in children:
            if all(
                self._partition_may_satisfy(partition, qual, part_col)
                for qual in quals
            ):
                keep.append(child_name)
            else:
                pruned.append(child_name)
        return keep, pruned

    def _partition_may_satisfy(self, partition, qual, part_col: int) -> bool:
        """Conservative: only eliminate on `col OP literal` conjuncts."""
        if isinstance(qual, ex.BOp) and qual.op in ("=", "<", "<=", ">", ">="):
            var, const, op = None, None, qual.op
            if isinstance(qual.left, ex.BVar) and isinstance(qual.right, ex.BConst):
                var, const = qual.left, qual.right.value
            elif isinstance(qual.right, ex.BVar) and isinstance(qual.left, ex.BConst):
                var, const = qual.right, qual.left.value
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}[op]
            if var is not None and var.col == part_col and const is not None:
                return partition.may_satisfy(op, const)
        return True

    # ----------------------------------------------------------------- joins
    def _join_all(
        self,
        query: LogicalQuery,
        nodes: Dict[int, PlanNode],
        pool: List[ex.BoundExpr],
    ) -> PlanNode:
        inner_ids = [
            i for i, rel in enumerate(query.rels) if rel.join_type == "inner"
        ]
        special_ids = [
            i for i, rel in enumerate(query.rels) if rel.join_type != "inner"
        ]
        if not inner_ids:
            raise PlannerError("query must start from at least one inner relation")

        joined_set = {inner_ids[0]}
        node = nodes[inner_ids[0]]
        remaining = set(inner_ids[1:])
        while remaining:
            best = None
            for cand in sorted(remaining):
                quals = self._applicable_quals(pool, joined_set, cand)
                keys = sum(
                    1 for q in quals if self._split_eq(q, joined_set, cand) is not None
                )
                cand_rows = nodes[cand].est_rows
                est = self.estimator.join_rows(node.est_rows, cand_rows, keys)
                connected = bool(quals)
                score = (not connected, est)  # prefer connected, then cheap
                if best is None or score < best[0]:
                    best = (score, cand, quals, est)
            _, cand, quals, est = best
            node = self._build_join(
                "inner", node, joined_set, nodes[cand], cand, quals, pool, est
            )
            joined_set.add(cand)
            remaining.discard(cand)

        for cand in special_ids:
            rel = query.rels[cand]
            quals = ex.conjuncts(rel.join_cond) if rel.join_cond is not None else []
            quals = quals + self._applicable_quals(pool, joined_set, cand)
            est = node.est_rows if rel.join_type != "inner" else node.est_rows
            node = self._build_join(
                rel.join_type, node, joined_set, nodes[cand], cand, quals, pool, est
            )
            joined_set.add(cand)
        return node

    def _applicable_quals(
        self, pool: List[ex.BoundExpr], joined: Set[int], cand: int
    ) -> List[ex.BoundExpr]:
        out = []
        for qual in pool:
            rels = ex.rels_of(qual)
            if cand in rels and rels <= joined | {cand} and not ex.has_aggregate(qual):
                out.append(qual)
        return out

    def _split_eq(
        self, qual: ex.BoundExpr, joined: Set[int], cand: int
    ) -> Optional[Tuple[ex.BoundExpr, ex.BoundExpr]]:
        """Return (left_expr, right_expr) if ``qual`` is an equality
        bridging the joined set and the candidate."""
        if not (isinstance(qual, ex.BOp) and qual.op == "="):
            return None
        left_rels, right_rels = ex.rels_of(qual.left), ex.rels_of(qual.right)
        if left_rels and left_rels <= joined and right_rels == {cand}:
            return qual.left, qual.right
        if right_rels and right_rels <= joined and left_rels == {cand}:
            return qual.right, qual.left
        return None

    def _build_join(
        self,
        join_type: str,
        left: PlanNode,
        joined: Set[int],
        right: PlanNode,
        cand: int,
        quals: List[ex.BoundExpr],
        pool: List[ex.BoundExpr],
        est_rows: float,
    ) -> PlanNode:
        for qual in quals:
            if qual in pool:
                pool.remove(qual)
        left_keys, right_keys, residual = [], [], []
        for qual in quals:
            pair = self._split_eq(qual, joined, cand)
            if pair is not None:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
            else:
                residual.append(qual)

        if join_type == "inner" and left_keys and right.est_bytes > left.est_bytes * 2:
            # Build the smaller side: swap inputs (inner joins commute).
            left, right = right, left
            left_keys, right_keys = right_keys, left_keys

        if not left_keys:
            # Key-less join: broadcast the inner side, nested loop.
            inner = right
            if inner.dist.kind != "replicated" and self.num_segments > 1:
                inner = self._motion("broadcast", inner)
            node = NestLoopJoin(
                join_type=join_type,
                left=left,
                right=inner,
                cond=ex.make_conjunction(residual),
            )
            node.dist = left.dist
            node.est_rows = max(est_rows, 1.0)
            node.est_width = left.est_width + right.est_width
            return node

        left, right = self._place_motions(join_type, left, right, left_keys, right_keys)
        node = HashJoin(
            join_type=join_type,
            left=left,
            right=right,
            left_keys=left_keys,
            right_keys=right_keys,
            residual=ex.make_conjunction(residual),
        )
        node.dist = left.dist if left.dist.kind != "replicated" else right.dist
        node.est_rows = max(est_rows, 1.0)
        node.est_width = left.est_width + (
            right.est_width if join_type in ("inner", "left") else 0
        )
        return node

    def _place_motions(
        self,
        join_type: str,
        left: PlanNode,
        right: PlanNode,
        left_keys: List[ex.BoundExpr],
        right_keys: List[ex.BoundExpr],
    ) -> Tuple[PlanNode, PlanNode]:
        """Make both sides co-located for the join keys, choosing the
        cheapest of: stay put / redistribute one side to match the
        other's hashing / broadcast the build side / redistribute both."""
        if self.num_segments <= 1:
            return left, right
        left_ids = [expr_column_id(e) for e in left_keys]
        right_ids = [expr_column_id(e) for e in right_keys]
        left_ok = self._dist_matches(left.dist, left_ids) or left.dist.kind == "single"
        right_ok = self._dist_matches(right.dist, right_ids) or right.dist.kind in (
            "replicated",
            "single",
        )
        if left.dist.kind == "replicated":
            left_ok = join_type == "inner"  # outer/semi left must stay unique

        # Candidate strategies: (cost in bytes moved, builder).
        candidates: List[Tuple[float, object]] = []
        if left_ok and right_ok and self._aligned(left, right, left_ids, right_ids):
            candidates.append((0.0, lambda: (left, right)))
        if left.dist.kind == "hashed" and self._dist_matches(left.dist, left_ids):
            exprs = self._matching_exprs(left.dist.keys, left_ids, right_keys)
            if exprs is not None:
                candidates.append(
                    (
                        right.est_bytes,
                        lambda e=exprs: (left, self._motion("redistribute", right, e)),
                    )
                )
        if (
            right.dist.kind == "hashed"
            and self._dist_matches(right.dist, right_ids)
            and join_type == "inner"
        ):
            exprs = self._matching_exprs(right.dist.keys, right_ids, left_keys)
            if exprs is not None:
                candidates.append(
                    (
                        left.est_bytes,
                        lambda e=exprs: (self._motion("redistribute", left, e), right),
                    )
                )
        if self.options.enable_broadcast and right.dist.kind != "replicated":
            candidates.append(
                (
                    right.est_bytes * (self.num_segments - 1),
                    lambda: (left, self._motion("broadcast", right)),
                )
            )
        if right.dist.kind == "replicated":
            # Right is already everywhere; left may stay put.
            candidates.append((0.0, lambda: (left, right)))
        # Fallback: redistribute both sides on the full key lists.
        both_cost = left.est_bytes + right.est_bytes
        candidates.append(
            (
                both_cost,
                lambda: (
                    self._motion("redistribute", left, left_keys),
                    self._motion("redistribute", right, right_keys),
                ),
            )
        )
        _cost, builder = min(candidates, key=lambda c: c[0])
        return builder()

    def _aligned(
        self,
        left: PlanNode,
        right: PlanNode,
        left_ids: List,
        right_ids: List,
    ) -> bool:
        """Are the two hashed sides partitioned *compatibly*? The i-th
        distribution key of each side must be the i-th member of the same
        join key pair."""
        if left.dist.kind != "hashed":
            return True  # single/replicated combinations
        if right.dist.kind in ("replicated", "single"):
            return True
        if len(left.dist.keys) != len(right.dist.keys):
            return False
        left_canon = [self._canon(i) for i in left_ids]
        right_canon = [self._canon(i) for i in right_ids]
        for lkey, rkey in zip(left.dist.keys, right.dist.keys):
            try:
                li = left_canon.index(self._canon(lkey))
                ri = right_canon.index(self._canon(rkey))
            except ValueError:
                return False
            if li != ri:
                return False
        return True

    def _matching_exprs(
        self,
        dist_keys: Sequence,
        side_ids: List,
        other_keys: List[ex.BoundExpr],
    ) -> Optional[List[ex.BoundExpr]]:
        """For each dist key of the stationary side, the matching join
        expression of the moving side (order matters for hash alignment)."""
        exprs = []
        side_canon = [self._canon(i) for i in side_ids]
        for key in dist_keys:
            try:
                index = side_canon.index(self._canon(key))
            except ValueError:
                return None
            exprs.append(other_keys[index])
        return exprs

    # ------------------------------------------------------------ aggregation
    def _plan_aggregation(
        self, query: LogicalQuery, node: PlanNode
    ) -> Tuple[PlanNode, object]:
        aggs: List[ex.BAgg] = []
        seen: Dict[ex.BAgg, int] = {}

        def register(agg: ex.BAgg) -> int:
            if agg not in seen:
                seen[agg] = len(aggs)
                aggs.append(agg)
            return seen[agg]

        exprs_to_scan: List[ex.BoundExpr] = [t for t, _ in query.targets]
        if query.having is not None:
            exprs_to_scan.append(query.having)
        exprs_to_scan.extend(k.expr for k in query.order_by)
        for expr in exprs_to_scan:
            for sub in ex.walk(expr):
                if isinstance(sub, ex.BAgg):
                    register(sub)

        group_keys = list(query.group_by)
        has_distinct = any(a.distinct for a in aggs)
        key_ids = [expr_column_id(k) for k in group_keys]
        colocated = (
            node.dist.kind == "single"
            or (group_keys and self._dist_matches(node.dist, key_ids))
            or self.num_segments <= 1
        )
        input_rows = node.est_rows
        groups_est = max(
            min(input_rows / 3.0, 10_000.0) if group_keys else 1.0, 1.0
        )

        if colocated:
            agg = HashAgg(child=node, group_keys=group_keys, aggs=aggs, phase="single")
            agg.dist = node.dist
            node = agg
        elif has_distinct:
            # DISTINCT aggregates need all of a group's rows on one QE.
            if group_keys:
                moved = self._motion("redistribute", node, group_keys)
            else:
                moved = self._motion("gather", node)
            agg = HashAgg(child=moved, group_keys=group_keys, aggs=aggs, phase="single")
            agg.dist = moved.dist
            node = agg
        else:
            partial = HashAgg(
                child=node, group_keys=group_keys, aggs=aggs, phase="partial"
            )
            partial.dist = node.dist
            partial.est_rows = min(
                groups_est * self.num_segments, max(input_rows, 1.0)
            )
            partial.est_width = 8.0 * len(partial.layout)
            if group_keys:
                keys_above = [ex.BGroupRef(i) for i in range(len(group_keys))]
                moved = self._motion("redistribute", partial, keys_above)
                final = HashAgg(
                    child=moved,
                    group_keys=keys_above,
                    aggs=aggs,
                    phase="final",
                )
                final.dist = moved.dist
            else:
                moved = self._motion("gather", partial)
                final = HashAgg(child=moved, group_keys=[], aggs=aggs, phase="final")
                final.dist = Distribution.single()
            node = final
        node.est_rows = groups_est
        node.est_width = 8.0 * len(node.layout)

        group_refs = {key: i for i, key in enumerate(group_keys)}

        def rewrite(expr: ex.BoundExpr) -> ex.BoundExpr:
            return ex.rewrite_post_agg(expr, seen, group_refs)

        if query.having is not None:
            having = rewrite(query.having)
            filtered = Filter(child=node, cond=having)
            filtered.est_rows = max(node.est_rows * 0.3, 1.0)
            filtered.est_width = node.est_width
            node = filtered
        return node, rewrite

    # ----------------------------------------------------------- output shape
    def _plan_output(
        self,
        query: LogicalQuery,
        node: PlanNode,
        targets: List[ex.BoundExpr],
        rewrite,
    ) -> PlanNode:
        # Sort keys may reference expressions beyond the select list;
        # compute them as hidden projection columns.
        sort_keys: List[SortKey] = []
        hidden: List[ex.BoundExpr] = []
        project_exprs = list(targets)
        for key in query.order_by:
            expr = rewrite(key.expr)
            if expr in project_exprs:
                index = project_exprs.index(expr)
            else:
                project_exprs.append(expr)
                hidden.append(expr)
                index = len(project_exprs) - 1
            sort_keys.append(
                SortKey(
                    ex.BTargetRef(index),
                    ascending=key.ascending,
                    nulls_first=key.nulls_first,
                )
            )

        project = Project(child=node, exprs=project_exprs)
        project.dist = node.dist
        project.est_rows = node.est_rows
        project.est_width = 8.0 * len(project_exprs)
        node = project

        if query.distinct:
            node = self._plan_distinct(node, len(targets))

        if sort_keys:
            local_sort = Sort(child=node, keys=sort_keys)
            local_sort.est_rows = node.est_rows
            local_sort.est_width = node.est_width
            node = local_sort
            if query.limit is not None and node.dist.kind != "single":
                node = Limit(child=node, count=query.limit)
            if node.dist.kind != "single":
                node = self._motion("gather", node)
                merge = Sort(child=node, keys=sort_keys)
                merge.est_rows = node.est_rows
                merge.est_width = node.est_width
                node = merge
        if query.limit is not None:
            if not sort_keys and node.dist.kind != "single":
                node = Limit(child=node, count=query.limit)
                node = self._motion("gather", node)
            node = Limit(child=node, count=query.limit)

        if hidden:
            trim = Project(
                child=node,
                exprs=[ex.BTargetRef(i) for i in range(len(targets))],
            )
            trim.dist = node.dist
            trim.est_rows = node.est_rows
            trim.est_width = 8.0 * len(targets)
            node = trim
        return node

    def _plan_distinct(self, node: PlanNode, ncols: int) -> PlanNode:
        keys = [ex.BTargetRef(i) for i in range(ncols)]
        key_ids = [expr_column_id(k) for k in keys]
        if node.dist.kind == "single" or node.dist.matches_keys(key_ids):
            dedup = HashAgg(child=node, group_keys=keys, aggs=[], phase="single")
            dedup.dist = node.dist
            return dedup
        partial = HashAgg(child=node, group_keys=keys, aggs=[], phase="partial")
        partial.dist = node.dist
        partial.est_rows = node.est_rows
        moved = self._motion(
            "redistribute", partial, [ex.BGroupRef(i) for i in range(ncols)]
        )
        final = HashAgg(
            child=moved,
            group_keys=[ex.BGroupRef(i) for i in range(ncols)],
            aggs=[],
            phase="final",
        )
        final.dist = moved.dist
        final.est_rows = max(node.est_rows / 2, 1.0)
        return final

    # ------------------------------------------------------------- utilities
    def _motion(
        self,
        kind: str,
        child: PlanNode,
        hash_exprs: Optional[List[ex.BoundExpr]] = None,
    ) -> Motion:
        motion = Motion(
            kind=kind,
            child=child,
            hash_exprs=list(hash_exprs or []),
            motion_id=next(self._motion_ids),
        )
        motion.est_rows = child.est_rows * (
            self.num_segments if kind == "broadcast" else 1
        )
        motion.est_width = child.est_width
        return motion

    def _direct_dispatch_segment(self, query: LogicalQuery) -> Optional[int]:
        """Segment id when the plan provably touches one segment only."""
        if not self.options.enable_direct_dispatch:
            return None
        if len(query.rels) != 1 or query.init_plans:
            return None
        rel = query.rels[0]
        if not isinstance(rel.source, TableSource) or rel.source.external:
            return None
        schema = rel.source.schema
        if not schema.distribution.is_hash or schema.partition_spec is not None:
            return None
        pinned: Dict[int, object] = {}
        for qual in query.quals:
            if isinstance(qual, ex.BOp) and qual.op == "=":
                if isinstance(qual.left, ex.BVar) and isinstance(
                    qual.right, ex.BConst
                ):
                    pinned[qual.left.col] = qual.right.value
                elif isinstance(qual.right, ex.BVar) and isinstance(
                    qual.left, ex.BConst
                ):
                    pinned[qual.right.col] = qual.left.value
        try:
            values = [
                pinned[schema.column_index(c)] for c in schema.distribution.columns
            ]
        except KeyError:
            return None
        return hash_values(values, self.num_segments)
