"""Cardinality and selectivity estimation for the cost-based planner.

Uses ANALYZE statistics when present and PostgreSQL-flavoured default
selectivities when not. Estimates only need to be good enough to order
joins and choose between broadcast and redistribute — the decisions the
paper credits for HAWQ's edge over Stinger's rule-based planning.
"""

from __future__ import annotations

import datetime
from typing import Dict, List, Optional, Sequence

from repro.catalog.stats import ColumnStats, TableStats
from repro.planner import exprs as ex
from repro.planner.logical import TableSource

DEFAULT_ROWS = 1000.0
DEFAULT_NDV = 200.0
DEFAULT_EQ_SEL = 0.005
DEFAULT_RANGE_SEL = 0.33
DEFAULT_LIKE_SEL = 0.1
MIN_SEL = 1e-5


class Estimator:
    """Estimates row counts for scans and joins."""

    def __init__(self, stats: Optional[Dict[str, TableStats]] = None):
        self.stats = stats or {}

    # ------------------------------------------------------------------ scans
    def table_rows(self, table: TableSource) -> float:
        stat = self.stats.get(table.table_name)
        if stat is not None and stat.row_count > 0:
            return stat.row_count
        return DEFAULT_ROWS

    def table_width(self, table: TableSource, ncols: Optional[int] = None) -> float:
        stat = self.stats.get(table.table_name)
        if stat is not None and stat.row_count > 0:
            return max(stat.avg_row_width, 8.0)
        return 8.0 * (ncols or len(table.schema.columns))

    def column_stats(self, table: TableSource, col_name: str) -> Optional[ColumnStats]:
        stat = self.stats.get(table.table_name)
        if stat is None:
            return None
        return stat.columns.get(col_name)

    # ------------------------------------------------------------ selectivity
    def selectivity(
        self, quals: Sequence[ex.BoundExpr], table: Optional[TableSource] = None
    ) -> float:
        result = 1.0
        for qual in quals:
            result *= self._qual_selectivity(qual, table)
        return max(result, MIN_SEL)

    def _qual_selectivity(
        self, qual: ex.BoundExpr, table: Optional[TableSource]
    ) -> float:
        if isinstance(qual, ex.BOp):
            if qual.op == "and":
                return self._qual_selectivity(qual.left, table) * self._qual_selectivity(
                    qual.right, table
                )
            if qual.op == "or":
                a = self._qual_selectivity(qual.left, table)
                b = self._qual_selectivity(qual.right, table)
                return min(1.0, a + b - a * b)
            if qual.op == "=":
                ndv = self._side_ndv(qual, table)
                return 1.0 / ndv if ndv else DEFAULT_EQ_SEL
            if qual.op in ("<", "<=", ">", ">="):
                return self._range_selectivity(qual, table)
            if qual.op == "<>":
                return 1.0 - DEFAULT_EQ_SEL
        if isinstance(qual, ex.BLike):
            return DEFAULT_LIKE_SEL if not qual.negated else 1 - DEFAULT_LIKE_SEL
        if isinstance(qual, ex.BIn):
            sel = DEFAULT_EQ_SEL * len(qual.items)
            return min(sel, 1.0) if not qual.negated else max(1 - sel, MIN_SEL)
        if isinstance(qual, ex.BNot):
            return max(1.0 - self._qual_selectivity(qual.operand, table), MIN_SEL)
        if isinstance(qual, ex.BIsNull):
            return 0.01 if not qual.negated else 0.99
        return 0.25

    def _side_ndv(self, qual: ex.BOp, table: Optional[TableSource]) -> Optional[float]:
        for side in (qual.left, qual.right):
            if isinstance(side, ex.BVar) and table is not None:
                stats = self.column_stats(table, side.name)
                if stats is not None and stats.n_distinct > 0:
                    return stats.n_distinct
        return None

    def _range_selectivity(
        self, qual: ex.BOp, table: Optional[TableSource]
    ) -> float:
        var, const, op = None, None, qual.op
        if isinstance(qual.left, ex.BVar) and isinstance(qual.right, ex.BConst):
            var, const = qual.left, qual.right.value
        elif isinstance(qual.right, ex.BVar) and isinstance(qual.left, ex.BConst):
            var, const = qual.right, qual.left.value
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        if var is None or table is None or const is None:
            return DEFAULT_RANGE_SEL
        stats = self.column_stats(table, var.name)
        if stats is None or stats.min_value is None or stats.max_value is None:
            return DEFAULT_RANGE_SEL
        lo, hi = stats.min_value, stats.max_value
        try:
            span = self._as_number(hi) - self._as_number(lo)
            if span <= 0:
                return DEFAULT_RANGE_SEL
            frac = (self._as_number(const) - self._as_number(lo)) / span
        except TypeError:
            return DEFAULT_RANGE_SEL
        frac = min(max(frac, 0.0), 1.0)
        if op in ("<", "<="):
            return max(frac, MIN_SEL)
        return max(1.0 - frac, MIN_SEL)

    @staticmethod
    def _as_number(value: object) -> float:
        if isinstance(value, datetime.date):
            return float(value.toordinal())
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeError(f"not orderable numerically: {value!r}")

    # ------------------------------------------------------------------ joins
    def join_rows(
        self,
        left_rows: float,
        right_rows: float,
        num_key_pairs: int,
        left_ndvs: Optional[List[float]] = None,
        right_ndvs: Optional[List[float]] = None,
    ) -> float:
        """Classic |L| * |R| / max(ndv_L, ndv_R) per equality key pair."""
        if num_key_pairs == 0:
            return left_rows * right_rows
        result = left_rows * right_rows
        for i in range(num_key_pairs):
            lndv = (left_ndvs or [])[i] if left_ndvs and i < len(left_ndvs) else None
            rndv = (right_ndvs or [])[i] if right_ndvs and i < len(right_ndvs) else None
            ndv = max(lndv or DEFAULT_NDV, rndv or DEFAULT_NDV)
            result /= ndv
        return max(result, 1.0)
