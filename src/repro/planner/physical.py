"""Physical plan nodes, distributions, and plan slicing.

A physical plan is a tree of operator nodes; ``Motion`` nodes mark data
movement between gangs. :func:`slice_plan` cuts the tree at motion
boundaries into :class:`PlanSlice` units (paper Section 2.4): each slice
runs as a gang of QEs, the topmost slice on the QD.

Every node carries a **layout** — the ordered list of column identities
its output tuples have. Column identities are tuples:
``('r', rel, col)`` for base/derived relation columns, ``('g', i)`` /
``('a', i)`` for group keys / aggregate slots above a HashAgg, and
``('t', i)`` for final projected targets. Expressions are compiled
against a node's input layout at execution time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PlannerError
from repro.planner import exprs as ex
from repro.planner.logical import LogicalQuery, SortKey, TableSource

ColumnId = Tuple


# -------------------------------------------------------------- distributions
def expr_column_id(expr: ex.BoundExpr) -> Optional[ColumnId]:
    """Column identity of a bare column expression, else None.

    Used to reason about co-location: a distribution or join key that is
    not a bare column cannot be matched structurally and is treated
    conservatively (no co-location assumed).
    """
    if isinstance(expr, ex.BVar) and expr.level == 0:
        return ("r", expr.rel, expr.col)
    if isinstance(expr, ex.BGroupRef):
        return ("g", expr.index)
    if isinstance(expr, ex.BAggRef):
        return ("a", expr.index)
    if isinstance(expr, ex.BTargetRef):
        return ("t", expr.index)
    return None


@dataclass(frozen=True)
class Distribution:
    """How a node's output rows are spread across the gang.

    ``keys`` are column ids in the node's output layout vocabulary.
    """

    kind: str  # hashed | random | replicated | single
    keys: Tuple[ColumnId, ...] = ()

    @classmethod
    def hashed(cls, keys: Sequence[ColumnId]) -> "Distribution":
        return cls("hashed", tuple(keys))

    @classmethod
    def random(cls) -> "Distribution":
        return cls("random")

    @classmethod
    def replicated(cls) -> "Distribution":
        return cls("replicated")

    @classmethod
    def single(cls) -> "Distribution":
        return cls("single")

    def matches_keys(self, key_ids: Sequence[Optional[ColumnId]]) -> bool:
        """True if rows are already co-located for these join/group keys:
        every distribution key must appear among the given column ids."""
        if self.kind != "hashed" or not self.keys:
            return False
        present = {k for k in key_ids if k is not None}
        return all(k in present for k in self.keys)


# --------------------------------------------------------------------- nodes
@dataclass
class PlanNode:
    """Base physical node; subclasses set children and layout."""

    layout: List[ColumnId] = field(default_factory=list, init=False)
    dist: Distribution = field(default=Distribution.random(), init=False)
    est_rows: float = field(default=1000.0, init=False)
    est_width: float = field(default=64.0, init=False)

    @property
    def children(self) -> List["PlanNode"]:
        return []

    @property
    def est_bytes(self) -> float:
        return self.est_rows * self.est_width

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class SeqScan(PlanNode):
    """Scan of one base table (all of its partitions unless eliminated)."""

    rel: int
    table: TableSource
    columns: List[int]  # physical columns actually decoded
    filter: Optional[ex.BoundExpr] = None
    #: Child partition table names to scan (None = not partitioned).
    partitions: Optional[List[str]] = None
    #: Partitions pruned by the planner, for EXPLAIN and tests.
    pruned_partitions: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.layout = [("r", self.rel, c) for c in self.columns]

    def describe(self) -> str:
        extra = f", filter" if self.filter is not None else ""
        pruned = (
            f", pruned {len(self.pruned_partitions)} partitions"
            if self.pruned_partitions
            else ""
        )
        return f"SeqScan({self.table.table_name}{extra}{pruned})"


@dataclass
class ExternalScan(PlanNode):
    """PXF external-table scan (paper Section 6)."""

    rel: int
    table: TableSource
    columns: List[int]
    filter: Optional[ex.BoundExpr] = None
    #: Conjuncts pushed down to the connector's filter API.
    pushed_filters: List[ex.BoundExpr] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.layout = [("r", self.rel, c) for c in self.columns]

    def describe(self) -> str:
        return f"ExternalScan({self.table.table_name})"


@dataclass
class SubqueryScan(PlanNode):
    """Adapts a derived subquery's output into relation ``rel``."""

    rel: int
    child: PlanNode
    ncols: int

    def __post_init__(self) -> None:
        self.layout = [("r", self.rel, i) for i in range(self.ncols)]

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]


@dataclass
class Filter(PlanNode):
    child: PlanNode
    cond: ex.BoundExpr = None

    def __post_init__(self) -> None:
        self.layout = list(self.child.layout)
        self.dist = self.child.dist

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]


@dataclass
class Project(PlanNode):
    child: PlanNode
    exprs: List[ex.BoundExpr] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.layout = [("t", i) for i in range(len(self.exprs))]
        self.dist = self.child.dist

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]


@dataclass
class HashJoin(PlanNode):
    """Hash join; build side is always ``right``.

    ``join_type``: inner | left | semi | anti. Semi/anti output only the
    left side's columns.
    """

    join_type: str
    left: PlanNode
    right: PlanNode
    left_keys: List[ex.BoundExpr] = field(default_factory=list)
    right_keys: List[ex.BoundExpr] = field(default_factory=list)
    residual: Optional[ex.BoundExpr] = None

    def __post_init__(self) -> None:
        if self.join_type in ("semi", "anti"):
            self.layout = list(self.left.layout)
        else:
            self.layout = list(self.left.layout) + list(self.right.layout)

    @property
    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def layout_for_residual(self) -> List[ColumnId]:
        """Residual conditions see both sides even for semi/anti joins."""
        return list(self.left.layout) + list(self.right.layout)

    def describe(self) -> str:
        return f"HashJoin({self.join_type}, {len(self.left_keys)} keys)"


@dataclass
class NestLoopJoin(PlanNode):
    """Nested-loop join for key-less (cross / pure inequality) joins."""

    join_type: str  # inner | left | semi | anti
    left: PlanNode
    right: PlanNode
    cond: Optional[ex.BoundExpr] = None

    def __post_init__(self) -> None:
        if self.join_type in ("semi", "anti"):
            self.layout = list(self.left.layout)
        else:
            self.layout = list(self.left.layout) + list(self.right.layout)

    @property
    def children(self) -> List[PlanNode]:
        return [self.left, self.right]

    def layout_for_residual(self) -> List[ColumnId]:
        return list(self.left.layout) + list(self.right.layout)


@dataclass
class HashAgg(PlanNode):
    """Hash aggregation.

    ``phase``: 'single' computes final values directly; 'partial'
    emits transition states; 'final' merges states from a partial phase.
    Output layout: group keys then aggregate slots.
    """

    child: PlanNode
    group_keys: List[ex.BoundExpr] = field(default_factory=list)
    aggs: List[ex.BAgg] = field(default_factory=list)
    phase: str = "single"

    def __post_init__(self) -> None:
        self.layout = [("g", i) for i in range(len(self.group_keys))] + [
            ("a", i) for i in range(len(self.aggs))
        ]

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"HashAgg({self.phase}, {len(self.group_keys)} keys, {len(self.aggs)} aggs)"


@dataclass
class Sort(PlanNode):
    child: PlanNode
    keys: List[SortKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.layout = list(self.child.layout)
        self.dist = self.child.dist

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]


@dataclass
class Limit(PlanNode):
    child: PlanNode
    count: int = 0

    def __post_init__(self) -> None:
        self.layout = list(self.child.layout)
        self.dist = self.child.dist

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]


@dataclass
class Result(PlanNode):
    """Constant-expression query (no FROM): runs on the master only."""

    exprs: List[ex.BoundExpr] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.layout = [("t", i) for i in range(len(self.exprs))]
        self.dist = Distribution.single()


@dataclass
class Motion(PlanNode):
    """Data movement: the send half lives at the top of a child slice."""

    kind: str  # gather | redistribute | broadcast
    child: PlanNode
    hash_exprs: List[ex.BoundExpr] = field(default_factory=list)
    motion_id: int = 0

    def __post_init__(self) -> None:
        self.layout = list(self.child.layout)
        if self.kind == "gather":
            self.dist = Distribution.single()
        elif self.kind == "broadcast":
            self.dist = Distribution.replicated()
        else:
            ids = [expr_column_id(e) for e in self.hash_exprs]
            self.dist = (
                Distribution.hashed([i for i in ids if i is not None])
                if all(i is not None for i in ids) and ids
                else Distribution.random()
            )

    @property
    def children(self) -> List[PlanNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Motion({self.kind})"


@dataclass
class MotionRecv(PlanNode):
    """Receive half of a motion: a leaf in the consuming slice."""

    slice_id: int = 0
    kind: str = "gather"
    source_layout: List[ColumnId] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.layout = list(self.source_layout)

    def describe(self) -> str:
        return f"MotionRecv(slice {self.slice_id}, {self.kind})"


# -------------------------------------------------------------------- slices
@dataclass
class PlanSlice:
    """One execution unit: runs as a gang of QEs (paper Section 2.4)."""

    slice_id: int
    root: PlanNode
    #: 'N' = one QE per segment; '1' = a single QE (the QD for the top).
    gang: str = "N"
    #: Motion kind connecting this slice to its parent (None for top).
    motion_kind: Optional[str] = None
    hash_exprs: List[ex.BoundExpr] = field(default_factory=list)
    child_slices: List[int] = field(default_factory=list)


@dataclass
class PhysicalPlan:
    """A complete parallel plan: slices + init plans + output metadata."""

    slices: List[PlanSlice]
    output_names: List[str]
    init_plans: List["PhysicalPlan"] = field(default_factory=list)
    #: Set when the planner proved the plan touches one segment only.
    direct_dispatch_segment: Optional[int] = None
    #: Number of segments the plan was built for.
    num_segments: int = 0

    @property
    def top_slice(self) -> PlanSlice:
        return self.slices[-1]

    @property
    def num_slices(self) -> int:
        return len(self.slices)

    def explain(self, annotate=None) -> str:
        """Human-readable plan tree for EXPLAIN.

        ``annotate``, when given, is ``callback(node) -> Optional[str]``;
        a returned string is appended to that node's line (EXPLAIN
        (ANALYZE, VERBOSE) feeds per-operator trace stats through it).
        """
        lines: List[str] = []
        for plan in self.init_plans:
            lines.append("InitPlan:")
            lines.extend(
                "  " + l for l in plan.explain(annotate=annotate).splitlines()
            )
        for plan_slice in reversed(self.slices):
            gang = "QD" if plan_slice.gang == "1" else "gang of N"
            lines.append(f"Slice {plan_slice.slice_id} ({gang}):")
            self._explain_node(plan_slice.root, lines, depth=1, annotate=annotate)
        return "\n".join(lines)

    def _explain_node(
        self, node: PlanNode, lines: List[str], depth: int, annotate=None
    ) -> None:
        line = "  " * depth + "-> " + node.describe()
        if annotate is not None:
            extra = annotate(node)
            if extra:
                line += f"  {extra}"
        lines.append(line)
        for child in node.children:
            self._explain_node(child, lines, depth + 1, annotate=annotate)


def slice_plan(
    root: PlanNode,
    output_names: List[str],
    init_plans: Optional[List[PhysicalPlan]] = None,
    num_segments: int = 0,
    direct_dispatch_segment: Optional[int] = None,
) -> PhysicalPlan:
    """Cut a plan tree at motion boundaries into slices.

    Slices are emitted children-first, the top slice last. The top slice
    runs on the QD (gang '1') when the root's distribution is 'single',
    otherwise as an N-gang whose results the engine gathers implicitly.
    """
    slices: List[PlanSlice] = []
    counter = itertools.count()

    def cut(node: PlanNode) -> Tuple[PlanNode, List[int]]:
        """Replace Motions under ``node`` with MotionRecv leaves."""
        if isinstance(node, Motion):
            child_root, grandchildren = cut(node.child)
            slice_id = next(counter)
            gang = "1" if node.child.dist.kind == "single" else "N"
            slices.append(
                PlanSlice(
                    slice_id=slice_id,
                    root=_clone_with_child(node, child_root),
                    gang=gang,
                    motion_kind=node.kind,
                    hash_exprs=list(node.hash_exprs),
                    child_slices=grandchildren,
                )
            )
            recv = MotionRecv(
                slice_id=slice_id, kind=node.kind, source_layout=list(node.layout)
            )
            recv.dist = node.dist
            recv.est_rows = node.est_rows
            recv.est_width = node.est_width
            return recv, [slice_id]
        child_ids: List[int] = []
        new_children = []
        for child in node.children:
            new_child, ids = cut(child)
            new_children.append(new_child)
            child_ids.extend(ids)
        return _replace_children(node, new_children), child_ids

    top_root, child_ids = cut(root)
    top_id = next(counter)
    gang = "1" if top_root.dist.kind == "single" else "N"
    slices.append(
        PlanSlice(
            slice_id=top_id,
            root=top_root,
            gang=gang,
            motion_kind=None,
            child_slices=child_ids,
        )
    )
    return PhysicalPlan(
        slices=slices,
        output_names=output_names,
        init_plans=init_plans or [],
        num_segments=num_segments,
        direct_dispatch_segment=direct_dispatch_segment,
    )


def _clone_with_child(motion: Motion, child: PlanNode) -> Motion:
    clone = Motion(
        kind=motion.kind,
        child=child,
        hash_exprs=list(motion.hash_exprs),
        motion_id=motion.motion_id,
    )
    clone.est_rows = motion.est_rows
    clone.est_width = motion.est_width
    return clone


def _replace_children(node: PlanNode, new_children: List[PlanNode]) -> PlanNode:
    """Mutate ``node`` to point at the rewritten children."""
    if not new_children:
        return node
    if isinstance(node, (Filter, Project, HashAgg, Sort, Limit, SubqueryScan)):
        node.child = new_children[0]
    elif isinstance(node, (HashJoin, NestLoopJoin)):
        node.left, node.right = new_children
    elif isinstance(node, Motion):  # pragma: no cover - handled in cut()
        node.child = new_children[0]
    else:
        raise PlannerError(f"cannot replace children of {type(node).__name__}")
    return node
