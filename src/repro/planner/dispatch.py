"""Metadata dispatch: self-described plans (paper Section 3.1).

Segments are stateless and the catalog lives only on the master, so a
dispatched plan must carry everything QEs need: table schemas, storage
formats, and each segment's data files with their transaction-visible
logical lengths (the snapshot, in effect). Plans are measured and
compressed exactly as the paper describes — metadata that is constant
across queries (the "readonly catalog store" bootstrapped on segments,
here: type and function definitions) is excluded from the plan, and a
compression pass shrinks what remains.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.catalog.schema import TableSchema
from repro.catalog.service import CatalogService
from repro.errors import PlannerError
from repro.planner.physical import PhysicalPlan, PlanNode, SeqScan
from repro.txn.mvcc import Snapshot


@dataclass
class SegfileMeta:
    """One lane of one table on one segment, as dispatched to QEs."""

    segfile_id: int
    paths: Dict[str, int]  # path -> logical length
    tupcount: int = 0


@dataclass
class TableMetadata:
    """Everything a QE needs to scan one table."""

    schema: TableSchema
    storage_format: str
    compression: str
    #: segment id -> lanes visible under the dispatching snapshot
    segfiles: Dict[int, List[SegfileMeta]] = field(default_factory=dict)


@dataclass
class SelfDescribedPlan:
    """A physical plan plus its piggybacked metadata."""

    plan: PhysicalPlan
    metadata: Dict[str, TableMetadata]
    #: Serialized plan sizes, for the dispatch cost model and EXPLAIN.
    plan_bytes: int = 0
    compressed_bytes: int = 0
    #: The dispatching snapshot (QEs evaluating master-only catalog
    #: scans need it; regular tables already carry logical lengths).
    snapshot: Optional[Snapshot] = None


def tables_in_plan(plan: PhysicalPlan) -> Set[str]:
    """All table names (including selected partitions) the plan scans."""
    names: Set[str] = set()

    def visit(node: PlanNode) -> None:
        if isinstance(node, SeqScan):
            if node.partitions is not None:
                names.update(node.partitions)
            else:
                names.add(node.table.table_name)
        for child in node.children:
            visit(child)

    for plan_slice in plan.slices:
        visit(plan_slice.root)
    for init in plan.init_plans:
        names.update(tables_in_plan(init))
    return names


def build_self_described_plan(
    plan: PhysicalPlan,
    catalog: CatalogService,
    snapshot: Snapshot,
) -> SelfDescribedPlan:
    """Decorate a plan with the metadata its QEs will need."""
    from repro.catalog.service import CATALOG_RELATION_COLUMNS

    metadata: Dict[str, TableMetadata] = {}
    for name in sorted(tables_in_plan(plan)):
        if name in CATALOG_RELATION_COLUMNS:
            continue  # system tables live on the master, never dispatched
        relation = catalog.lookup_relation(name, snapshot)
        if relation is None:
            raise PlannerError(f"table {name!r} vanished before dispatch")
        schema: TableSchema = relation["schema"]
        table_meta = TableMetadata(
            schema=schema,
            storage_format=schema.storage_format,
            compression=schema.compression,
        )
        for row in catalog.segfiles(name, snapshot):
            table_meta.segfiles.setdefault(row["segment_id"], []).append(
                SegfileMeta(
                    segfile_id=row["segfile_id"],
                    paths=dict(row["paths"]),
                    tupcount=row["tupcount"],
                )
            )
        metadata[name] = table_meta

    raw = pickle.dumps((plan, metadata), protocol=pickle.HIGHEST_PROTOCOL)
    compressed = zlib.compress(raw, 1)
    return SelfDescribedPlan(
        plan=plan,
        metadata=metadata,
        plan_bytes=len(raw),
        compressed_bytes=len(compressed),
        snapshot=snapshot,
    )
