"""Metadata dispatch: self-described plans (paper Section 3.1).

Segments are stateless and the catalog lives only on the master, so a
dispatched plan must carry everything QEs need: table schemas, storage
formats, and each segment's data files with their transaction-visible
logical lengths (the snapshot, in effect). Plans are measured and
compressed exactly as the paper describes — metadata that is constant
across queries (the "readonly catalog store" bootstrapped on segments,
here: type and function definitions) is excluded from the plan, and a
compression pass shrinks what remains.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.catalog.schema import TableSchema
from repro.catalog.service import CatalogService
from repro.errors import PlannerError
from repro.planner.physical import PhysicalPlan, PlanNode, PlanSlice, SeqScan
from repro.txn.mvcc import Snapshot

#: Pseudo segment id of the query dispatcher's own executor (gang "1"
#: slices — final gathers, Result-only plans — run on the master).
QD_SEGMENT = -1


@dataclass
class SegfileMeta:
    """One lane of one table on one segment, as dispatched to QEs."""

    segfile_id: int
    paths: Dict[str, int]  # path -> logical length
    tupcount: int = 0


@dataclass
class TableMetadata:
    """Everything a QE needs to scan one table."""

    schema: TableSchema
    storage_format: str
    compression: str
    #: segment id -> lanes visible under the dispatching snapshot
    segfiles: Dict[int, List[SegfileMeta]] = field(default_factory=dict)


@dataclass
class SelfDescribedPlan:
    """A physical plan plus its piggybacked metadata."""

    plan: PhysicalPlan
    metadata: Dict[str, TableMetadata]
    #: Serialized plan sizes, for the dispatch cost model and EXPLAIN.
    plan_bytes: int = 0
    compressed_bytes: int = 0
    #: The dispatching snapshot (QEs evaluating master-only catalog
    #: scans need it; regular tables already carry logical lengths).
    snapshot: Optional[Snapshot] = None


@dataclass
class SliceTask:
    """One unit of dispatch: one plan slice assigned to one segment.

    The dispatcher cuts a :class:`SelfDescribedPlan` into per-segment
    tasks; each task travels to its :class:`~repro.cluster.worker.
    SegmentWorker` inside one RPC DISPATCH message, and the worker
    executes exactly one serialized task at a time.
    """

    slice_id: int
    #: Executing segment (``QD_SEGMENT`` for gang "1" slices).
    segment: int
    gang: str
    is_top: bool
    #: Segments of the consuming (parent) gang — the targets of this
    #: slice's root motion. Empty for the top slice.
    receivers: List[int] = field(default_factory=list)
    #: Slice count of the whole plan (interconnect stream arithmetic).
    num_plan_slices: int = 1
    #: Charged wire size of the DISPATCH message carrying this task
    #: (the compressed self-described plan for QE tasks, 0 for the
    #: master's loopback dispatch to its own executor).
    payload_bytes: int = 0


def gang_segments(
    plan: PhysicalPlan, plan_slice: PlanSlice, num_segments: int
) -> List[int]:
    """Segments a slice's gang runs on: the QD for gang "1", the single
    direct-dispatch target when the planner proved one, else all."""
    if plan_slice.gang == "1":
        return [QD_SEGMENT]
    if plan.direct_dispatch_segment is not None:
        return [plan.direct_dispatch_segment]
    return list(range(num_segments))


def make_slice_tasks(
    plan: PhysicalPlan, sdp: "SelfDescribedPlan", num_segments: int
) -> List[List[SliceTask]]:
    """Cut a self-described plan into dispatchable per-segment tasks.

    Returns one wave per slice, in the slicer's children-first order, so
    a wave's motion inputs are fully produced by earlier waves. Direct
    dispatch naturally shrinks QE waves to the single contacted segment.
    """
    parent_gang: Dict[int, List[int]] = {}
    for plan_slice in plan.slices:
        receivers = gang_segments(plan, plan_slice, num_segments)
        for child_id in plan_slice.child_slices:
            parent_gang[child_id] = receivers
    waves: List[List[SliceTask]] = []
    for plan_slice in plan.slices:
        is_top = plan_slice is plan.top_slice
        wave = [
            SliceTask(
                slice_id=plan_slice.slice_id,
                segment=segment,
                gang=plan_slice.gang,
                is_top=is_top,
                receivers=parent_gang.get(plan_slice.slice_id, [QD_SEGMENT]),
                num_plan_slices=len(plan.slices),
                payload_bytes=(
                    0 if segment == QD_SEGMENT else sdp.compressed_bytes
                ),
            )
            for segment in gang_segments(plan, plan_slice, num_segments)
        ]
        waves.append(wave)
    return waves


def tables_in_plan(plan: PhysicalPlan) -> Set[str]:
    """All table names (including selected partitions) the plan scans."""
    names: Set[str] = set()

    def visit(node: PlanNode) -> None:
        if isinstance(node, SeqScan):
            if node.partitions is not None:
                names.update(node.partitions)
            else:
                names.add(node.table.table_name)
        for child in node.children:
            visit(child)

    for plan_slice in plan.slices:
        visit(plan_slice.root)
    for init in plan.init_plans:
        names.update(tables_in_plan(init))
    return names


def build_self_described_plan(
    plan: PhysicalPlan,
    catalog: CatalogService,
    snapshot: Snapshot,
) -> SelfDescribedPlan:
    """Decorate a plan with the metadata its QEs will need."""
    from repro.catalog.service import CATALOG_RELATION_COLUMNS
    from repro.obs.sysviews import SYSTEM_VIEW_COLUMNS

    metadata: Dict[str, TableMetadata] = {}
    for name in sorted(tables_in_plan(plan)):
        if name in CATALOG_RELATION_COLUMNS or name in SYSTEM_VIEW_COLUMNS:
            continue  # system tables/views live on the master only
        relation = catalog.lookup_relation(name, snapshot)
        if relation is None:
            raise PlannerError(f"table {name!r} vanished before dispatch")
        schema: TableSchema = relation["schema"]
        table_meta = TableMetadata(
            schema=schema,
            storage_format=schema.storage_format,
            compression=schema.compression,
        )
        for row in catalog.segfiles(name, snapshot):
            table_meta.segfiles.setdefault(row["segment_id"], []).append(
                SegfileMeta(
                    segfile_id=row["segfile_id"],
                    paths=dict(row["paths"]),
                    tupcount=row["tupcount"],
                )
            )
        metadata[name] = table_meta

    raw = pickle.dumps((plan, metadata), protocol=pickle.HIGHEST_PROTOCOL)
    compressed = zlib.compress(raw, 1)
    return SelfDescribedPlan(
        plan=plan,
        metadata=metadata,
        plan_bytes=len(raw),
        compressed_bytes=len(compressed),
        snapshot=snapshot,
    )
