"""Semantic analysis: names to (relation, column) bindings, scoping,
aggregate validation, view expansion, subquery capture.

The analyzer consumes parser AST and a catalog resolver and produces a
:class:`~repro.planner.logical.LogicalQuery`. Correlated references are
bound with ``level > 0`` so the decorrelation pass can find them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.catalog.schema import TableSchema
from repro.errors import SemanticError
from repro.planner import exprs as ex
from repro.planner.logical import (
    DerivedSource,
    LogicalQuery,
    RelEntry,
    SortKey,
    TableSource,
)
from repro.sql import ast


@dataclass
class RelationInfo:
    """What the catalog knows about one named relation."""

    kind: str  # table | view | external
    schema: Optional[TableSchema] = None
    view_query: Optional[ast.SelectStmt] = None
    pxf: Optional[dict] = None


class AnalyzerCatalog:
    """Minimal catalog interface the analyzer needs (duck-typed)."""

    def resolve(self, name: str) -> RelationInfo:  # pragma: no cover - protocol
        raise NotImplementedError


@dataclass
class _ScopeEntry:
    alias: str
    column_names: List[str]
    rel_index: int


class _Scope:
    def __init__(self, entries: Optional[List[_ScopeEntry]] = None):
        self.entries: List[_ScopeEntry] = entries or []

    def add(self, alias: str, column_names: List[str]) -> int:
        index = len(self.entries)
        self.entries.append(_ScopeEntry(alias.lower(), column_names, index))
        return index

    def resolve(self, name: str, table: Optional[str]) -> Optional[Tuple[int, int, str]]:
        """Returns (rel_index, col_index, canonical name) or None."""
        target = name.lower()
        if table is not None:
            qualifier = table.lower()
            for entry in self.entries:
                if entry.alias == qualifier:
                    for i, col in enumerate(entry.column_names):
                        if col.lower() == target:
                            return entry.rel_index, i, col
                    raise SemanticError(
                        f"column {name!r} not found in relation {table!r}"
                    )
            return None  # qualifier may belong to an outer scope
        matches = []
        for entry in self.entries:
            for i, col in enumerate(entry.column_names):
                if col.lower() == target:
                    matches.append((entry.rel_index, i, col))
        if len(matches) > 1:
            raise SemanticError(f"column reference {name!r} is ambiguous")
        return matches[0] if matches else None


class Analyzer:
    """Semantic analyzer: AST -> LogicalQuery."""

    def __init__(self, catalog: AnalyzerCatalog):
        self.catalog = catalog

    # ------------------------------------------------------------ entry point
    def analyze(
        self,
        stmt: ast.SelectStmt,
        outer_scopes: Optional[List[_Scope]] = None,
    ) -> LogicalQuery:
        outer_scopes = outer_scopes or []
        query = LogicalQuery()
        scope = _Scope()
        scopes = [scope] + outer_scopes

        for item in stmt.from_items:
            self._add_from_item(item, query, scope, scopes)

        if stmt.where is not None:
            where = self._expr(stmt.where, scopes, allow_aggregates=False)
            query.quals.extend(ex.conjuncts(where))

        # Targets (expanding stars) before GROUP BY so ordinals resolve.
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                for bound, name in self._expand_star(item.expr, query, scope):
                    query.targets.append((bound, name))
                continue
            bound = self._expr(item.expr, scopes, allow_aggregates=True)
            name = item.alias or self._derive_name(item.expr)
            query.targets.append((bound, name.lower()))

        for group_expr in stmt.group_by:
            query.group_by.append(self._resolve_group_key(group_expr, query, scopes))

        if stmt.having is not None:
            query.having = self._expr(stmt.having, scopes, allow_aggregates=True)

        for sort in stmt.order_by:
            bound = self._resolve_output_ref(sort.expr, query, scopes)
            query.order_by.append(
                SortKey(bound, ascending=sort.ascending, nulls_first=sort.nulls_first)
            )

        query.limit = stmt.limit
        query.distinct = stmt.distinct
        query.has_aggregates = bool(stmt.group_by) or any(
            ex.has_aggregate(t) for t, _ in query.targets
        ) or (query.having is not None and ex.has_aggregate(query.having))
        self._validate_aggregation(query)
        return query

    # ----------------------------------------------------------------- FROM
    def _add_from_item(
        self,
        item: ast.FromItem,
        query: LogicalQuery,
        scope: _Scope,
        scopes: List[_Scope],
    ) -> None:
        if isinstance(item, ast.TableRef):
            self._add_table(item, query, scope, join_type="inner", join_cond=None)
            return
        if isinstance(item, ast.SubquerySource):
            sub = self.analyze(item.query, outer_scopes=scopes[1:])
            entry = RelEntry(
                alias=item.alias.lower(),
                column_names=list(sub.output_names),
                source=DerivedSource(sub),
            )
            query.rels.append(entry)
            scope.add(item.alias, entry.column_names)
            return
        if isinstance(item, ast.JoinExpr):
            self._add_from_item(item.left, query, scope, scopes)
            if item.join_type in ("inner", "cross"):
                self._add_from_item(item.right, query, scope, scopes)
                if item.condition is not None:
                    cond = self._expr(item.condition, scopes, allow_aggregates=False)
                    query.quals.extend(ex.conjuncts(cond))
                return
            if item.join_type == "left":
                before = len(query.rels)
                self._add_from_item(item.right, query, scope, scopes)
                if len(query.rels) != before + 1:
                    raise SemanticError(
                        "LEFT JOIN right side must be a single relation"
                    )
                cond = (
                    self._expr(item.condition, scopes, allow_aggregates=False)
                    if item.condition is not None
                    else None
                )
                query.rels[-1].join_type = "left"
                query.rels[-1].join_cond = cond
                return
            raise SemanticError(f"unsupported join type {item.join_type!r}")
        raise SemanticError(f"unsupported FROM item {type(item).__name__}")

    def _add_table(
        self,
        ref: ast.TableRef,
        query: LogicalQuery,
        scope: _Scope,
        join_type: str,
        join_cond,
    ) -> None:
        info = self.catalog.resolve(ref.name)
        alias = (ref.alias or ref.name).lower()
        if info.kind == "view":
            sub = self.analyze(info.view_query, outer_scopes=[])
            entry = RelEntry(
                alias=alias,
                column_names=list(sub.output_names),
                source=DerivedSource(sub),
                join_type=join_type,
                join_cond=join_cond,
            )
        else:
            entry = RelEntry(
                alias=alias,
                column_names=list(info.schema.column_names),
                source=TableSource(
                    table_name=info.schema.name,
                    schema=info.schema,
                    external=(info.kind == "external"),
                    pxf=info.pxf,
                ),
                join_type=join_type,
                join_cond=join_cond,
            )
        query.rels.append(entry)
        scope.add(alias, entry.column_names)

    def _expand_star(
        self, star: ast.Star, query: LogicalQuery, scope: _Scope
    ) -> List[Tuple[ex.BoundExpr, str]]:
        out = []
        for entry in scope.entries:
            if star.table is not None and entry.alias != star.table.lower():
                continue
            for i, col in enumerate(entry.column_names):
                out.append(
                    (ex.BVar(rel=entry.rel_index, col=i, name=col), col.lower())
                )
        if not out:
            raise SemanticError(f"cannot expand {star.table or ''}.*")
        return out

    # ------------------------------------------------------------ group/order
    def _resolve_group_key(
        self, expr: ast.Expr, query: LogicalQuery, scopes: List[_Scope]
    ) -> ex.BoundExpr:
        bound = self._resolve_output_ref(expr, query, scopes)
        if ex.has_aggregate(bound):
            raise SemanticError("aggregates are not allowed in GROUP BY")
        return bound

    def _resolve_output_ref(
        self, expr: ast.Expr, query: LogicalQuery, scopes: List[_Scope]
    ) -> ex.BoundExpr:
        """Resolve an expression that may be an output ordinal or alias."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            index = expr.value
            if index < 1 or index > len(query.targets):
                raise SemanticError(f"ORDER/GROUP BY position {index} out of range")
            return query.targets[index - 1][0]
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for bound, name in query.targets:
                if name == expr.name.lower():
                    return bound
        return self._expr(expr, scopes, allow_aggregates=True)

    # ------------------------------------------------------------ expressions
    def _expr(
        self,
        node: ast.Expr,
        scopes: List[_Scope],
        allow_aggregates: bool,
        inside_aggregate: bool = False,
    ) -> ex.BoundExpr:
        recurse = lambda n: self._expr(n, scopes, allow_aggregates, inside_aggregate)

        if isinstance(node, ast.Literal):
            return ex.BConst(node.value)
        if isinstance(node, ast.IntervalLiteral):
            return ex.BInterval(node.quantity, node.unit)
        if isinstance(node, ast.ColumnRef):
            return self._column(node, scopes)
        if isinstance(node, ast.BinaryOp):
            return ex.BOp(node.op, recurse(node.left), recurse(node.right))
        if isinstance(node, ast.UnaryOp):
            if node.op == "not":
                operand = recurse(node.operand)
                if isinstance(operand, ex.BSubPlan) and operand.kind in ("in", "exists"):
                    return ex.BSubPlan(
                        operand.kind, operand.query, operand.test, not operand.negated
                    )
                return ex.BNot(operand)
            if node.op == "-":
                return ex.BOp("-", ex.BConst(0), recurse(node.operand))
            raise SemanticError(f"unsupported unary op {node.op!r}")
        if isinstance(node, ast.FuncCall):
            return self._func(node, scopes, allow_aggregates, inside_aggregate)
        if isinstance(node, ast.CaseExpr):
            whens = tuple((recurse(c), recurse(r)) for c, r in node.whens)
            else_result = (
                recurse(node.else_result) if node.else_result is not None else None
            )
            return ex.BCase(whens, else_result)
        if isinstance(node, ast.CastExpr):
            return ex.BCast(recurse(node.operand), node.type_name)
        if isinstance(node, ast.LikeExpr):
            pattern = recurse(node.pattern)
            if not isinstance(pattern, ex.BConst) or not isinstance(
                pattern.value, str
            ):
                raise SemanticError("LIKE pattern must be a string literal")
            return ex.BLike(recurse(node.operand), pattern.value, node.negated)
        if isinstance(node, ast.BetweenExpr):
            operand = recurse(node.operand)
            between = ex.BOp(
                "and",
                ex.BOp(">=", operand, recurse(node.lower)),
                ex.BOp("<=", operand, recurse(node.upper)),
            )
            return ex.BNot(between) if node.negated else between
        if isinstance(node, ast.InList):
            return ex.BIn(
                recurse(node.operand),
                tuple(recurse(i) for i in node.items),
                node.negated,
            )
        if isinstance(node, ast.IsNullExpr):
            return ex.BIsNull(recurse(node.operand), node.negated)
        if isinstance(node, ast.ExtractExpr):
            return ex.BExtract(node.part, recurse(node.operand))
        if isinstance(node, ast.SubqueryExpr):
            sub = self.analyze(node.query, outer_scopes=scopes)
            if len(sub.targets) != 1:
                raise SemanticError("scalar subquery must return one column")
            return ex.BSubPlan("scalar", sub)
        if isinstance(node, ast.InSubquery):
            sub = self.analyze(node.query, outer_scopes=scopes)
            if len(sub.targets) != 1:
                raise SemanticError("IN subquery must return one column")
            return ex.BSubPlan(
                "in", sub, test=recurse(node.operand), negated=node.negated
            )
        if isinstance(node, ast.ExistsExpr):
            sub = self.analyze(node.query, outer_scopes=scopes)
            return ex.BSubPlan("exists", sub, negated=node.negated)
        if isinstance(node, ast.Star):
            raise SemanticError("* is only allowed in the select list or COUNT(*)")
        raise SemanticError(f"unsupported expression {type(node).__name__}")

    def _column(self, node: ast.ColumnRef, scopes: List[_Scope]) -> ex.BVar:
        for level, scope in enumerate(scopes):
            hit = scope.resolve(node.name, node.table)
            if hit is not None:
                rel, col, name = hit
                return ex.BVar(rel=rel, col=col, name=name, level=level)
        qualified = f"{node.table}.{node.name}" if node.table else node.name
        raise SemanticError(f"column {qualified!r} does not exist")

    def _func(
        self,
        node: ast.FuncCall,
        scopes: List[_Scope],
        allow_aggregates: bool,
        inside_aggregate: bool,
    ) -> ex.BoundExpr:
        name = node.name.lower()
        if name in ex.AGGREGATE_FUNCTIONS:
            if not allow_aggregates:
                raise SemanticError(f"aggregate {name}() not allowed here")
            if inside_aggregate:
                raise SemanticError("aggregates cannot be nested")
            if node.star:
                if name != "count":
                    raise SemanticError(f"{name}(*) is not a thing")
                return ex.BAgg("count", None)
            if len(node.args) != 1:
                raise SemanticError(f"{name}() takes exactly one argument")
            arg = self._expr(node.args[0], scopes, allow_aggregates, True)
            return ex.BAgg(name, arg, node.distinct)
        if name in ex.SCALAR_FUNCTIONS:
            args = tuple(
                self._expr(a, scopes, allow_aggregates, inside_aggregate)
                for a in node.args
            )
            return ex.BFunc(name, args)
        raise SemanticError(f"unknown function {name!r}")

    # ------------------------------------------------------------ validation
    def _derive_name(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        if isinstance(expr, ast.FuncCall):
            return expr.name
        if isinstance(expr, ast.ExtractExpr):
            return expr.part
        return "?column?"

    def _validate_aggregation(self, query: LogicalQuery) -> None:
        if not query.has_aggregates:
            if query.having is not None:
                raise SemanticError("HAVING requires aggregation")
            return
        for target, name in query.targets:
            if not self._agg_valid(target, query.group_by):
                raise SemanticError(
                    f"column in target {name!r} must appear in GROUP BY or "
                    "be used in an aggregate"
                )
        for key in query.order_by:
            if not self._agg_valid(key.expr, query.group_by):
                raise SemanticError(
                    "ORDER BY column must appear in GROUP BY or an aggregate"
                )
        if query.having is not None and not self._agg_valid(
            query.having, query.group_by
        ):
            raise SemanticError(
                "HAVING column must appear in GROUP BY or an aggregate"
            )

    def _agg_valid(self, expr: ex.BoundExpr, group_by: List[ex.BoundExpr]) -> bool:
        """Every level-0 Var is under an aggregate or inside a group key."""
        if expr in group_by:
            return True
        if isinstance(expr, ex.BAgg):
            return True
        if isinstance(expr, ex.BVar):
            return expr.level > 0
        if isinstance(expr, (ex.BConst, ex.BInterval, ex.BParam)):
            return True
        if isinstance(expr, ex.BOp):
            return self._agg_valid(expr.left, group_by) and self._agg_valid(
                expr.right, group_by
            )
        if isinstance(expr, ex.BNot):
            return self._agg_valid(expr.operand, group_by)
        if isinstance(expr, ex.BFunc):
            return all(self._agg_valid(a, group_by) for a in expr.args)
        if isinstance(expr, ex.BCase):
            parts = [c for c, _ in expr.whens] + [r for _, r in expr.whens]
            if expr.else_result is not None:
                parts.append(expr.else_result)
            return all(self._agg_valid(p, group_by) for p in parts)
        if isinstance(expr, (ex.BCast, ex.BExtract, ex.BIsNull, ex.BLike)):
            return self._agg_valid(expr.operand, group_by)
        if isinstance(expr, ex.BIn):
            return self._agg_valid(expr.operand, group_by) and all(
                self._agg_valid(i, group_by) for i in expr.items
            )
        if isinstance(expr, ex.BSubPlan):
            return expr.test is None or self._agg_valid(expr.test, group_by)
        return False
