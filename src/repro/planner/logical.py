"""The analyzed, planner-ready representation of one SELECT.

A :class:`LogicalQuery` is relational-algebra-flavoured: a list of
relations (base tables, derived subqueries), a flat list of WHERE
conjuncts, and the projection/aggregation/ordering clauses — all
expressed over :class:`~repro.planner.exprs.BVar` (relation index,
column index) references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.catalog.schema import TableSchema
from repro.planner.exprs import BoundExpr


@dataclass
class TableSource:
    """A base table (or external PXF table)."""

    table_name: str
    schema: TableSchema
    external: bool = False
    pxf: Optional[dict] = None


@dataclass
class DerivedSource:
    """A subquery in FROM (or one manufactured by decorrelation)."""

    query: "LogicalQuery"


@dataclass
class RelEntry:
    """One relation in the query's FROM space.

    ``join_type`` describes how this relation joins the ones before it:
    'inner' (default; comma-separated tables are inner with conditions in
    the WHERE quals), 'left' (explicit LEFT JOIN with ``join_cond``),
    'semi' / 'anti' (manufactured by decorrelation of IN/EXISTS).
    """

    alias: str
    column_names: List[str]
    source: object  # TableSource | DerivedSource
    join_type: str = "inner"
    join_cond: Optional[BoundExpr] = None

    @property
    def is_table(self) -> bool:
        return isinstance(self.source, TableSource)


@dataclass
class SortKey:
    expr: BoundExpr
    ascending: bool = True
    nulls_first: Optional[bool] = None


@dataclass
class LogicalQuery:
    """One analyzed SELECT block."""

    rels: List[RelEntry] = field(default_factory=list)
    quals: List[BoundExpr] = field(default_factory=list)
    #: Output expressions with their column names.
    targets: List[Tuple[BoundExpr, str]] = field(default_factory=list)
    group_by: List[BoundExpr] = field(default_factory=list)
    having: Optional[BoundExpr] = None
    order_by: List[SortKey] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
    #: True when any target/having contains an aggregate (even without
    #: GROUP BY: plain aggregation to one row).
    has_aggregates: bool = False
    #: Uncorrelated scalar subqueries hoisted out; BParam(i) refers here.
    init_plans: List["LogicalQuery"] = field(default_factory=list)

    @property
    def output_names(self) -> List[str]:
        return [name for _, name in self.targets]
