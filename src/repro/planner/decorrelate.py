"""Subquery decorrelation.

Rewrites :class:`~repro.planner.exprs.BSubPlan` nodes into joins, the way
mature optimizers (including Greenplum's, which HAWQ inherits) do:

* uncorrelated scalar subquery        -> InitPlan (run once, becomes a
  parameter),
* ``x IN (SELECT ...)``               -> semi join (anti join for NOT IN),
* ``[NOT] EXISTS (correlated SELECT)``-> semi/anti join whose join
  condition is the rewritten correlation predicate,
* correlated scalar *aggregate*       -> the subquery is grouped by its
  correlation columns and inner-joined back (the classic magic-set-style
  rewrite; works for Q2/Q17/Q20).

Only subplans appearing as top-level WHERE/HAVING conjuncts can change
join structure; a subplan nested under OR raises a clear PlannerError
(no TPC-H query needs it).

Semantics notes (documented deviations, both irrelevant to TPC-H data):
``NOT IN`` with NULLs in the subquery output behaves as an anti join;
a correlated ``COUNT`` over zero matching rows would drop the outer row
rather than compare against 0.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.errors import PlannerError
from repro.planner import exprs as ex
from repro.planner.logical import DerivedSource, LogicalQuery, RelEntry


def decorrelate(query: LogicalQuery) -> LogicalQuery:
    """Rewrite all subplans in ``query`` (in place; returned for chaining)."""
    for rel in query.rels:
        if isinstance(rel.source, DerivedSource):
            decorrelate(rel.source.query)

    # Join predicates manufactured mid-rewrite (by the scalar-aggregate
    # transform) land in _pending_quals so the reassignment below cannot
    # lose them.
    query._pending_quals = []  # type: ignore[attr-defined]
    new_quals: List[ex.BoundExpr] = []
    for qual in list(query.quals):
        new_quals.extend(_rewrite_conjunct(qual, query))
    query.quals = new_quals

    query.targets = [
        (_rewrite_scalar_subplans(t, query), name) for t, name in query.targets
    ]
    if query.having is not None:
        having_parts: List[ex.BoundExpr] = []
        for conjunct in ex.conjuncts(query.having):
            having_parts.append(_rewrite_scalar_subplans(conjunct, query))
        query.having = ex.make_conjunction(having_parts)
    query.order_by = [
        replace(k, expr=_rewrite_scalar_subplans(k.expr, query))
        for k in query.order_by
    ]
    query.quals.extend(query._pending_quals)  # type: ignore[attr-defined]
    query._pending_quals = []  # type: ignore[attr-defined]
    for init in query.init_plans:
        decorrelate(init)
    _reject_remaining_subplans(query)
    return query


# ----------------------------------------------------------- conjunct rewrite
def _rewrite_conjunct(
    qual: ex.BoundExpr, query: LogicalQuery
) -> List[ex.BoundExpr]:
    """Rewrite one WHERE conjunct; may append rels/quals to ``query``."""
    if isinstance(qual, ex.BSubPlan):
        if qual.kind == "exists":
            _add_semi_join(query, qual.query, negated=qual.negated, test=None)
            return []
        if qual.kind == "in":
            _add_semi_join(query, qual.query, negated=qual.negated, test=qual.test)
            return []
        # A bare scalar subplan as a boolean conjunct: treat as scalar.
    return [_rewrite_scalar_subplans(qual, query)]


def _rewrite_scalar_subplans(
    expr: ex.BoundExpr, query: LogicalQuery
) -> ex.BoundExpr:
    """Replace scalar BSubPlans with params (uncorrelated) or join vars
    (correlated aggregates)."""

    def rewrite(node: ex.BoundExpr) -> Optional[ex.BoundExpr]:
        if not isinstance(node, ex.BSubPlan):
            return None
        if node.kind != "scalar":
            raise PlannerError(
                "IN/EXISTS subqueries are only supported as top-level "
                "WHERE conjuncts"
            )
        sub: LogicalQuery = node.query
        decorrelate(sub)
        corr = _correlation_quals(sub)
        if not corr:
            query.init_plans.append(sub)
            return ex.BParam(len(query.init_plans) - 1)
        return _add_scalar_agg_join(query, sub, corr)

    return ex.transform(expr, rewrite)


# ----------------------------------------------------------------- semi join
def _add_semi_join(
    query: LogicalQuery,
    sub: LogicalQuery,
    negated: bool,
    test: Optional[ex.BoundExpr],
) -> None:
    """Attach ``sub`` as a semi (or anti) joined derived relation."""
    decorrelate(sub)
    corr = _correlation_quals(sub)
    if sub.has_aggregates and corr:
        raise PlannerError(
            "correlated IN/EXISTS over an aggregating subquery is not supported"
        )
    sub.quals = [q for q in sub.quals if q not in corr]

    new_rel_index = len(query.rels)
    inner_outputs: Dict[ex.BVar, int] = {}
    join_conds: List[ex.BoundExpr] = []
    if test is not None:
        # IN: the subquery's single output column is join key 0.
        join_conds.append(
            ex.BOp("=", test, ex.BVar(rel=new_rel_index, col=0, name="_in"))
        )
    else:
        # EXISTS: the original targets are irrelevant; only correlation
        # columns need to flow out of the subquery.
        sub.targets = []

    def _slot_for(var: ex.BVar) -> int:
        if var not in inner_outputs:
            sub.targets.append((var, f"_c{len(sub.targets)}"))
            inner_outputs[var] = len(sub.targets) - 1
        return inner_outputs[var]

    def rebind(qual: ex.BoundExpr) -> ex.BoundExpr:
        """Move a correlated conjunct into the outer query's frame."""

        def fn(node: ex.BoundExpr) -> Optional[ex.BoundExpr]:
            if isinstance(node, ex.BVar):
                if node.level == 0:
                    slot = _slot_for(node)
                    return ex.BVar(
                        rel=new_rel_index, col=slot, name=node.name, level=0
                    )
                return replace(node, level=node.level - 1)
            return None

        return ex.transform(qual, fn)

    for conjunct in corr:
        join_conds.append(rebind(conjunct))

    query.rels.append(
        RelEntry(
            alias=f"_subplan_{new_rel_index}",
            column_names=[name for _, name in sub.targets],
            source=DerivedSource(sub),
            join_type="anti" if negated else "semi",
            join_cond=ex.make_conjunction(join_conds),
        )
    )


# ---------------------------------------------------------- scalar agg join
def _add_scalar_agg_join(
    query: LogicalQuery, sub: LogicalQuery, corr: List[ex.BoundExpr]
) -> ex.BoundExpr:
    """Group the correlated scalar-aggregate subquery by its correlation
    columns, inner-join it back, and return the Var holding the value."""
    if not sub.has_aggregates or sub.group_by or len(sub.targets) != 1:
        raise PlannerError(
            "correlated scalar subqueries must be a single plain aggregate"
        )
    sub.quals = [q for q in sub.quals if q not in corr]
    new_rel_index = len(query.rels)
    group_slots: Dict[ex.BVar, int] = {}
    join_quals: List[ex.BoundExpr] = []
    for conjunct in corr:
        outer_expr, inner_var = _split_eq_correlation(conjunct)
        if inner_var not in group_slots:
            sub.group_by.append(inner_var)
            sub.targets.append((inner_var, f"_g{len(sub.targets)}"))
            group_slots[inner_var] = len(sub.targets) - 1
        join_quals.append(
            ex.BOp(
                "=",
                _lower_level(outer_expr),
                ex.BVar(rel=new_rel_index, col=group_slots[inner_var]),
            )
        )
    query.rels.append(
        RelEntry(
            alias=f"_scalar_{new_rel_index}",
            column_names=[name for _, name in sub.targets],
            source=DerivedSource(sub),
            join_type="inner",
            join_cond=None,
        )
    )
    pending = getattr(query, "_pending_quals", None)
    if pending is None:
        query.quals.extend(join_quals)
    else:
        pending.extend(join_quals)
    return ex.BVar(rel=new_rel_index, col=0, name="_scalar")


def _split_eq_correlation(
    qual: ex.BoundExpr,
) -> Tuple[ex.BoundExpr, ex.BVar]:
    """For ``inner_var = outer_expr`` (either order) return (outer, inner)."""
    if not (isinstance(qual, ex.BOp) and qual.op == "="):
        raise PlannerError(
            "correlated scalar aggregates support only equality correlation"
        )
    left_levels = {v.level for v in _all_vars(qual.left)}
    right_levels = {v.level for v in _all_vars(qual.right)}
    if left_levels == {0} and right_levels and 0 not in right_levels:
        inner, outer = qual.left, qual.right
    elif right_levels == {0} and left_levels and 0 not in left_levels:
        inner, outer = qual.right, qual.left
    else:
        raise PlannerError("unsupported correlation predicate shape")
    if not isinstance(inner, ex.BVar):
        raise PlannerError("correlation must be on a bare inner column")
    return outer, inner


def _lower_level(expr: ex.BoundExpr) -> ex.BoundExpr:
    def fn(node: ex.BoundExpr) -> Optional[ex.BoundExpr]:
        if isinstance(node, ex.BVar) and node.level >= 1:
            return replace(node, level=node.level - 1)
        return None

    return ex.transform(expr, fn)


# ------------------------------------------------------------------ helpers
def _all_vars(expr: ex.BoundExpr) -> List[ex.BVar]:
    return [n for n in ex.walk(expr) if isinstance(n, ex.BVar)]


def _correlation_quals(sub: LogicalQuery) -> List[ex.BoundExpr]:
    """Conjuncts of ``sub`` that reference enclosing-query columns."""
    return [
        q
        for q in sub.quals
        if any(v.level >= 1 for v in _all_vars(q))
    ]


def _reject_remaining_subplans(query: LogicalQuery) -> None:
    exprs = [q for q in query.quals]
    exprs.extend(t for t, _ in query.targets)
    if query.having is not None:
        exprs.append(query.having)
    exprs.extend(k.expr for k in query.order_by)
    for rel in query.rels:
        if rel.join_cond is not None:
            exprs.append(rel.join_cond)
    for expr in exprs:
        if ex.has_subplan(expr):
            raise PlannerError(
                "a subquery expression survived decorrelation (subqueries "
                "under OR or in unsupported positions are not implemented)"
            )
