"""Multi-stream throughput benchmark on the simulated clock.

The SQL-on-Hadoop comparisons HAWQ was measured against (Tapdiya &
Fabbri; the BigBench evaluations) report *multi-stream* throughput, not
single-query latency. This bench replays N ∈ {1, 2, 4, 8} concurrent
TPC-H streams through the :class:`~repro.executor.concurrent.
ConcurrentRunner` — closed-loop sessions contending for per-segment
slots under resource-queue admission — and records aggregate
queries/sec, p50/p99 tail latency and admission wait-time percentiles
into ``BENCH_throughput.json``.

    python -m repro.bench --throughput            # report + JSON artifact
    python -m repro.bench --throughput --check    # CI gate

Each stream's statement order is a seeded draw (``DeterministicRng``
per stream), so the whole workload — and therefore every interleaving
decision — is a pure function of the seed. The ``--check`` gate
requires:

* every per-query answer bit-identical to a fresh serial run of the
  same statements (the concurrency-safety property),
* aggregate qps at N=8 at least ``QPS_FLOOR``,
* qps monotone N=1 → N=8 (more streams must add throughput),
* p99/p50 at N=8 under ``TAIL_RATIO_CEILING`` (admission control must
  bound the tail, not just the mean).

All times are simulated seconds; the artifact carries a ``history``
list so qps drift is visible across runs.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.bench.reporting import print_figure
from repro.engine import Engine
from repro.executor.concurrent import BatchResult, ConcurrentRunner
from repro.tpch import QUERIES, create_table_sql, generate
from repro.util import DeterministicRng

#: Root seed; override with ``--seed N``.
DEFAULT_SEED = 53
#: TPC-H scale for throughput runs (chaos-sized: sub-second per query).
SCALE = 0.0005
DATA_SEED = 19940601
TABLES = ("customer", "orders", "lineitem")
STREAM_COUNTS = (1, 2, 4, 8)
STATEMENTS_PER_STREAM = 6

#: ``--check`` gates (simulated clock, so these are stable across
#: machines): aggregate queries/sec the 8-stream run must sustain, and
#: the widest tolerable p99/p50 latency spread at 8 streams.
QPS_FLOOR = 10.0
TAIL_RATIO_CEILING = 5.0


def _query_pool() -> List[str]:
    """The statement mix: two lineitem scans, the 3-way join, and a
    selective customer point lookup (keys exist at this scale)."""
    return [
        QUERIES[6][0],
        QUERIES[1][0],
        QUERIES[3][0],
        "SELECT c_custkey, c_name FROM customer WHERE c_custkey = 7",
        "SELECT c_custkey, c_name FROM customer WHERE c_custkey = 42",
    ]


def make_streams(seed: int, count: int) -> List[List[str]]:
    """Seeded per-stream statement orders: stream i's sequence depends
    only on (seed, i), so adding streams never reshuffles earlier ones."""
    pool = _query_pool()
    streams = []
    for stream_id in range(count):
        rng = DeterministicRng(seed, "throughput", f"stream{stream_id}")
        streams.append(
            [pool[rng.randrange(len(pool))] for _ in range(STATEMENTS_PER_STREAM)]
        )
    return streams


def build_engine(seed: int) -> Engine:
    engine = Engine(num_segment_hosts=3, segments_per_host=2, seed=seed)
    session = engine.connect()
    data = generate(SCALE, seed=DATA_SEED)
    for table in TABLES:
        session.execute(create_table_sql(table))
        session.load_rows(table, getattr(data, table))
    session.execute("ANALYZE")
    return engine


def _serial_reference(seed: int, streams: List[List[str]]) -> Dict[tuple, list]:
    """Fresh-engine serial twin: expected rows per (stream, index)."""
    engine = build_engine(seed)
    session = engine.connect()
    expected = {}
    for stream_id, stream in enumerate(streams):
        for index, sql in enumerate(stream):
            expected[(stream_id, index)] = session.query(sql)
    return expected


def run_streams(seed: int, count: int) -> Dict[str, object]:
    """One N-stream run plus its serial bit-identity check."""
    streams = make_streams(seed, count)
    engine = build_engine(seed)
    batch: BatchResult = ConcurrentRunner(engine, streams).run()
    expected = _serial_reference(seed, streams)
    mismatches = sum(
        1
        for outcome in batch.outcomes
        if outcome.rows != expected[(outcome.stream, outcome.index)]
    )
    queue_stats = {
        name: {
            "admitted": stats.admitted,
            "parked": stats.parked,
            "wait_seconds": stats.wait_seconds,
            "max_depth": stats.max_depth,
        }
        for name, stats in batch.queue_stats.items()
    }
    return {
        "streams": count,
        "queries": len(batch.outcomes),
        "makespan_s": batch.makespan,
        "qps": batch.qps,
        "p50_s": batch.p50,
        "p99_s": batch.p99,
        "queue_wait_s": sum(o.queue_wait for o in batch.outcomes),
        "wait_p50_s": batch.wait_percentile(50.0),
        "wait_p95_s": batch.wait_percentile(95.0),
        "wait_p99_s": batch.wait_percentile(99.0),
        "slot_wait_s": sum(o.slot_wait for o in batch.outcomes),
        "answers_match": mismatches == 0,
        "mismatches": mismatches,
        "queues": queue_stats,
    }


def _append_history(out_path: str, runs: Dict[str, dict]) -> list:
    """Carry prior qps history forward plus this run's N=8 numbers."""
    history = []
    if os.path.exists(out_path):
        try:
            with open(out_path) as fh:
                history = json.load(fh).get("history", [])
        except (OSError, ValueError):
            history = []
    top = runs[str(STREAM_COUNTS[-1])]
    history.append(
        {
            "streams": top["streams"],
            "qps": top["qps"],
            "p50_s": top["p50_s"],
            "p99_s": top["p99_s"],
            "wait_p99_s": top["wait_p99_s"],
        }
    )
    return history


def run_throughput(
    out_path: Optional[str] = "BENCH_throughput.json",
    check: bool = False,
    seed: int = DEFAULT_SEED,
) -> int:
    """Full multi-stream sweep; returns a process exit code."""
    runs = {str(n): run_streams(seed, n) for n in STREAM_COUNTS}
    report = {
        "scale_factor": SCALE,
        "seed": seed,
        "statements_per_stream": STATEMENTS_PER_STREAM,
        "qps_floor": QPS_FLOOR,
        "tail_ratio_ceiling": TAIL_RATIO_CEILING,
        "runs": runs,
    }
    print_figure(
        "Throughput: N concurrent TPC-H streams (simulated clock)",
        ["streams", "queries", "makespan s", "qps", "p50 s", "p99 s",
         "wait p50 s", "wait p99 s", "answers"],
        [
            (
                entry["streams"],
                entry["queries"],
                entry["makespan_s"],
                entry["qps"],
                entry["p50_s"],
                entry["p99_s"],
                entry["wait_p50_s"],
                entry["wait_p99_s"],
                "match" if entry["answers_match"] else "DIVERGED",
            )
            for entry in runs.values()
        ],
        notes=[
            "closed-loop streams; per-segment slots; resource-queue admission",
            "wait pXX: admission (resource-queue) wait-time percentiles",
            "every answer compared bit-for-bit against a fresh serial run",
        ],
    )
    if out_path:
        report["history"] = _append_history(out_path, runs)
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {out_path}")
    if not check:
        return 0
    failures = []
    for entry in runs.values():
        if not entry["answers_match"]:
            failures.append(
                f"N={entry['streams']}: {entry['mismatches']} queries "
                "diverged from their serial run"
            )
    top = runs[str(STREAM_COUNTS[-1])]
    base = runs[str(STREAM_COUNTS[0])]
    if top["qps"] < QPS_FLOOR:
        failures.append(
            f"N={top['streams']} qps {top['qps']:.2f} below floor {QPS_FLOOR}"
        )
    if top["qps"] <= base["qps"]:
        failures.append(
            f"qps did not rise with streams ({base['qps']:.2f} -> "
            f"{top['qps']:.2f})"
        )
    if top["p50_s"] > 0 and top["p99_s"] / top["p50_s"] > TAIL_RATIO_CEILING:
        failures.append(
            f"N={top['streams']} tail ratio p99/p50 "
            f"{top['p99_s'] / top['p50_s']:.1f} exceeds {TAIL_RATIO_CEILING}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: qps {base['qps']:.2f} (N={base['streams']}) -> "
        f"{top['qps']:.2f} (N={top['streams']}), "
        f"tail ratio {top['p99_s'] / max(top['p50_s'], 1e-12):.2f}"
    )
    return 0
