"""Benchmark harness reproducing the paper's evaluation (Section 8)."""

from repro.bench.harness import (
    BenchConfig,
    HawqBench,
    StingerBench,
    rows_match,
    suite_seconds,
)
from repro.bench.reporting import format_table, print_figure

__all__ = [
    "BenchConfig",
    "HawqBench",
    "StingerBench",
    "format_table",
    "print_figure",
    "rows_match",
    "suite_seconds",
]
