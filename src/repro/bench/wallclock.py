"""Wall-clock benchmarks for the vectorized executor + block decode cache.

Everything else under ``repro.bench`` reports *simulated* seconds — the
paper-shape figures — which by design are identical between the row and
batch executors. This module measures what the vectorized path actually
buys: real elapsed time.

    python -m repro.bench --wallclock          # report + BENCH_wallclock.json
    python -m repro.bench --wallclock --check  # fail if batch is too slow

The ``--check`` guard runs a 100k-row CO scan-filter-aggregate
microbenchmark (the shape vectorization helps most) with a warm block
cache and requires batch mode to beat row mode by the backend's
threshold: ``CHECK_THRESHOLD`` (5x) on the NumPy backend, where typed
vectors, fused selection kernels and the bincount aggregate fold carry
the work, or ``CHECK_THRESHOLD_FALLBACK`` (1.5x) under
``REPRO_NO_NUMPY=1``, where batching only amortizes interpretation
overhead. Every run also appends a ``{speedup, backend, threshold}``
entry to the report's ``history`` list so regressions are visible
across runs, not just against the gate.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

from repro.bench.harness import (
    BenchConfig,
    NOMINAL_160GB,
    default_scale_factor,
    get_hawq,
)
from repro.bench.reporting import print_figure
from repro.columnar import NUMPY_AVAILABLE
from repro.engine import Engine
from repro.tpch.queries import COMPLEX_JOIN_QUERIES, SIMPLE_SELECTION_QUERIES
from repro.util import DeterministicRng

#: Minimum warm-cache speedup of batch over row mode on the microbench
#: when the NumPy vector backend is active.
CHECK_THRESHOLD = 5.0

#: The pure-python ``array`` fallback still has to win, but it only
#: amortizes per-row interpretation, so the bar is lower.
CHECK_THRESHOLD_FALLBACK = 1.5


def active_backend() -> str:
    """Which vector backend this process is using."""
    return "numpy" if NUMPY_AVAILABLE else "fallback"


def check_threshold() -> float:
    """The speedup the ``--check`` gate requires for this backend."""
    return CHECK_THRESHOLD if NUMPY_AVAILABLE else CHECK_THRESHOLD_FALLBACK

#: Root seed for the microbenchmark's engine and data; override with
#: ``python -m repro.bench --wallclock --seed N``.
DEFAULT_SEED = 77

#: Rows in the scan-filter-agg microbenchmark table.
MICROBENCH_ROWS = 100_000

MICROBENCH_QUERY = """
    SELECT c, count(*), sum(a), avg(b)
    FROM wallclock_mb
    WHERE a % 7 < 5 AND b < 0.9
    GROUP BY c
"""


def _metrics_summary(snapshot) -> Dict[str, object]:
    """Compact per-query observability readout for the JSON report."""
    hits = snapshot.total("cache_hits")
    misses = snapshot.total("cache_misses")
    lookups = hits + misses
    return {
        "bytes_read": snapshot.total("bytes_read"),
        "motion_bytes": snapshot.total("motion_bytes"),
        "motion_streams": snapshot.total("motion_streams"),
        "rpc_messages": snapshot.total("rpc_messages"),
        "datagrams_delivered": snapshot.total("datagrams_delivered"),
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": hits / lookups if lookups else None,
    }


def _tpch_config(executor_mode: str) -> BenchConfig:
    return BenchConfig(
        nominal_bytes=NOMINAL_160GB,
        scale_factor=default_scale_factor(),
        storage_format="co",
        compression="none",
        io_cached=True,
        executor_mode=executor_mode,
    )


def run_tpch_wallclock(repeats: int = 3) -> Dict[str, dict]:
    """Wall + simulated seconds for the Fig 8 (simple selection) and
    Fig 9 (complex join) query sets under both executor modes."""
    out: Dict[str, dict] = {}
    benches = {mode: get_hawq(_tpch_config(mode)) for mode in ("row", "batch")}
    for figure, numbers in (
        ("fig08_simple_selection", SIMPLE_SELECTION_QUERIES),
        ("fig09_complex_joins", COMPLEX_JOIN_QUERIES),
    ):
        queries = {}
        for n in numbers:
            entry = {}
            for mode, bench in benches.items():
                wall, result = bench.time_query(n, repeats=repeats)
                entry[mode] = {
                    "wall_s": wall,
                    "simulated_s": result.cost.seconds,
                    "metrics": _metrics_summary(result.metrics),
                }
            entry["speedup"] = entry["row"]["wall_s"] / entry["batch"]["wall_s"]
            queries[f"q{n}"] = entry
        out[figure] = queries
    return out


def _make_microbench_engine(executor_mode: str, seed: int = DEFAULT_SEED) -> "Engine":
    engine = Engine(
        num_segment_hosts=4,
        segments_per_host=1,
        seed=seed,
        executor_mode=executor_mode,
    )
    session = engine.connect()
    session.execute(
        "CREATE TABLE wallclock_mb (a INT, b DOUBLE, c INT) "
        "WITH (appendonly=true, orientation=column) DISTRIBUTED BY (a)"
    )
    rng = DeterministicRng(seed, "wallclock", "microbench-data")
    rows = [
        (i, rng.random(), i % 23) for i in range(MICROBENCH_ROWS)
    ]
    session.load_rows("wallclock_mb", rows)
    return engine


def _time_microbench(executor_mode: str, repeats: int, seed: int) -> float:
    engine = _make_microbench_engine(executor_mode, seed=seed)
    session = engine.connect()
    session.execute(MICROBENCH_QUERY)  # warm the block decode cache
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        session.execute(MICROBENCH_QUERY)
        best = min(best, time.perf_counter() - start)
    return best


def run_microbench(repeats: int = 3, seed: int = DEFAULT_SEED) -> dict:
    """Warm-cache scan-filter-agg over 100k CO rows: row vs batch."""
    row_s = _time_microbench("row", repeats, seed)
    batch_s = _time_microbench("batch", repeats, seed)
    return {
        "rows": MICROBENCH_ROWS,
        "seed": seed,
        "query": " ".join(MICROBENCH_QUERY.split()),
        "backend": active_backend(),
        "row_wall_s": row_s,
        "batch_wall_s": batch_s,
        "speedup": row_s / batch_s,
        "threshold": check_threshold(),
    }


def _append_history(out_path: str, micro: dict) -> list:
    """Carry the prior report's speedup history forward plus this run."""
    history = []
    if os.path.exists(out_path):
        try:
            with open(out_path) as fh:
                history = json.load(fh).get("history", [])
        except (OSError, ValueError):
            history = []
    history.append(
        {
            "backend": micro["backend"],
            "speedup": micro["speedup"],
            "threshold": micro["threshold"],
        }
    )
    return history


def run_wallclock(
    out_path: Optional[str] = "BENCH_wallclock.json",
    check: bool = False,
    repeats: int = 3,
    seed: int = DEFAULT_SEED,
) -> int:
    """Full wall-clock report; returns a process exit code."""
    report = {
        "scale_factor": default_scale_factor(),
        "seed": seed,
        "backend": active_backend(),
        "microbench": run_microbench(repeats=repeats, seed=seed),
        "tpch": run_tpch_wallclock(repeats=repeats),
    }
    rows = []
    for figure, queries in report["tpch"].items():
        for q, entry in queries.items():
            rows.append(
                (
                    figure.split("_")[0],
                    q,
                    entry["row"]["wall_s"] * 1e3,
                    entry["batch"]["wall_s"] * 1e3,
                    entry["speedup"],
                    entry["batch"]["simulated_s"],
                )
            )
    print_figure(
        "Wall-clock: row vs batch executor (warm block cache)",
        ["figure", "query", "row ms", "batch ms", "speedup", "sim s"],
        rows,
        notes=["simulated seconds identical across modes by construction"],
    )
    micro = report["microbench"]
    print_figure(
        f"Microbench: scan-filter-agg over {micro['rows']} CO rows",
        ["row ms", "batch ms", "speedup", "required"],
        [
            (
                micro["row_wall_s"] * 1e3,
                micro["batch_wall_s"] * 1e3,
                micro["speedup"],
                f">= {micro['threshold']}x",
            )
        ],
    )
    if out_path:
        report["history"] = _append_history(out_path, micro)
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {out_path}")
    required = check_threshold()
    if check and micro["speedup"] < required:
        print(
            f"FAIL: batch speedup {micro['speedup']:.2f}x "
            f"({micro['backend']} backend) below required {required}x"
        )
        return 1
    if check:
        print(
            f"OK: batch speedup {micro['speedup']:.2f}x >= {required}x "
            f"({micro['backend']} backend)"
        )
    return 0
