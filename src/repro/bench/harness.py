"""Shared set-up for the figure benchmarks.

The paper's testbed: 16 segment hosts x 6 HAWQ segments (96 segments),
or 16 nodes x 9 YARN containers for Stinger; TPC-H at 160 GB (CPU-bound,
fits in page cache) and 1.6 TB (IO-bound).

We execute on dbgen data at a small scale factor and simulate the rest:
``scale = nominal_bytes / actual_bytes`` re-inflates every per-byte and
per-tuple cost. HAWQ runs ``sim_segments`` Python-simulated segments
standing in for the paper's 96, so its model scale divides by
``96 / sim_segments`` (each simulated segment holds that many real
segments' share of data).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines import StingerEngine
from repro.baselines.mapreduce import ReducerOutOfMemory
from repro.engine import Engine
from repro.executor.expr import estimate_row_bytes
from repro.executor.runner import QueryResult
from repro.simtime import CostModel
from repro.tpch.dbgen import TpchData, generate
from repro.tpch.queries import QUERIES
from repro.tpch.schema import TABLE_NAMES, load_tpch

#: Paper cluster geometry.
PAPER_SEGMENTS = 96
PAPER_NODES = 16
PAPER_CONTAINERS_PER_NODE = 9

NOMINAL_160GB = 160e9
NOMINAL_1600GB = 1.6e12


def default_scale_factor() -> float:
    """dbgen scale factor used by the benchmarks (env-overridable)."""
    return float(os.environ.get("REPRO_TPCH_SF", "0.002"))


def raw_bytes(data: TpchData) -> float:
    """Approximate raw (uncompressed) size of the generated dataset."""
    total = 0
    for name in TABLE_NAMES:
        total += sum(estimate_row_bytes(r) for r in getattr(data, name))
    return float(total)


@dataclass
class BenchConfig:
    """One experimental configuration."""

    nominal_bytes: float = NOMINAL_160GB
    scale_factor: float = 0.002
    storage_format: str = "ao"
    compression: str = "none"
    distribution: str = "hash"
    interconnect: str = "udp"
    io_cached: bool = True  # 160GB fits in memory; 1.6TB does not
    sim_segments: int = 16
    paper_segments: int = PAPER_SEGMENTS
    seed: int = 19940601
    executor_mode: str = "batch"  # "row" keeps the tuple-at-a-time path

    def model_scale(self, actual_bytes: float) -> float:
        per_real_segment = self.nominal_bytes / self.paper_segments
        per_sim_segment = actual_bytes / self.sim_segments
        return per_real_segment / max(per_sim_segment, 1.0)


@dataclass
class HawqBench:
    """A loaded HAWQ cluster ready to run the TPC-H suite."""

    config: BenchConfig
    engine: Engine
    session: object
    data: TpchData
    actual_bytes: float
    _results: Dict[int, QueryResult] = field(default_factory=dict)

    @classmethod
    def create(
        cls, config: BenchConfig, data: Optional[TpchData] = None
    ) -> "HawqBench":
        model = CostModel()
        model.io_cached = config.io_cached
        model.modeled_segments = config.paper_segments
        engine = Engine(
            num_segment_hosts=config.sim_segments,
            segments_per_host=1,
            cost_model=model,
            interconnect=config.interconnect,
            seed=config.seed,
            executor_mode=config.executor_mode,
        )
        session = engine.connect()
        if data is None:
            data = generate(config.scale_factor, seed=config.seed)
        load_tpch(
            session,
            scale=config.scale_factor,
            storage_format=config.storage_format,
            compression=config.compression,
            distribution=config.distribution,
            data=data,
        )
        actual = raw_bytes(data)
        model.scale = config.model_scale(actual)
        return cls(
            config=config,
            engine=engine,
            session=session,
            data=data,
            actual_bytes=actual,
        )

    def run_query(self, number: int) -> QueryResult:
        """Run one TPC-H query; returns the SELECT's result (memoized —
        execution is deterministic, so figure benchmarks sharing a
        configuration reuse each other's runs)."""
        if number in self._results:
            return self._results[number]
        result: Optional[QueryResult] = None
        for stmt in QUERIES[number]:
            r = self.session.execute(stmt)
            if r.plan is not None:
                result = r
        assert result is not None
        self._results[number] = result
        return result

    def run_suite(self, numbers=None) -> Dict[int, QueryResult]:
        numbers = numbers or sorted(QUERIES)
        return {n: self.run_query(n) for n in numbers}

    def time_query(
        self, number: int, repeats: int = 3
    ) -> Tuple[float, QueryResult]:
        """Wall-clock one TPC-H query: run it ``repeats`` times (never
        memoized — the point is real elapsed time) and return
        ``(min_wall_seconds, last_result)`` — the result carries the
        simulated cost and the per-statement metrics snapshot. The first
        run warms the block decode cache; ``min`` over repeats drops
        scheduler and GC noise, standard practice for microbenchmark
        timing."""
        best = float("inf")
        result: Optional[QueryResult] = None
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            for stmt in QUERIES[number]:
                r = self.session.execute(stmt)
                if r.plan is not None:
                    result = r
            best = min(best, time.perf_counter() - start)
        assert result is not None
        return best, result

    def table_stored_bytes(self, table: str) -> int:
        """Physical (compressed) bytes of one table on HDFS."""
        snapshot = self.engine.txns.begin().statement_snapshot()
        total = 0
        for segfile in self.engine.catalog.segfiles(table, snapshot):
            total += sum(segfile["paths"].values())
        return total


@dataclass
class StingerBench:
    """A loaded Stinger warehouse ready to run the suite."""

    config: BenchConfig
    engine: StingerEngine
    data: TpchData
    actual_bytes: float
    _results: Dict[int, Tuple[object, str]] = field(default_factory=dict)

    @classmethod
    def create(
        cls, config: BenchConfig, data: Optional[TpchData] = None
    ) -> "StingerBench":
        if data is None:
            data = generate(config.scale_factor, seed=config.seed)
        actual = raw_bytes(data)
        model = CostModel()
        model.io_cached = config.io_cached
        stinger = StingerEngine(
            num_nodes=PAPER_NODES,
            containers_per_node=PAPER_CONTAINERS_PER_NODE,
            cost_model=model,
            scale=config.nominal_bytes / actual,
            seed=config.seed,
        )
        from repro.catalog.schema import TableSchema
        from repro.tpch.schema import create_table_sql
        from repro.engine import _schema_from_ast
        from repro.sql.parser import parse_statement

        for table in TABLE_NAMES:
            ddl = parse_statement(create_table_sql(table, "ao", "none", "hash"))
            schema = _schema_from_ast(ddl)
            stinger.load_table(schema, getattr(data, table))
        return cls(config=config, engine=stinger, data=data, actual_bytes=actual)

    def run_query(self, number: int):
        """Run one query; returns (result_or_None, 'ok'|'oom'). Memoized."""
        if number in self._results:
            return self._results[number]
        result = None
        try:
            for stmt in QUERIES[number]:
                r = self.engine.execute(stmt)
                if r.column_names:
                    result = r
            outcome = (result, "ok")
        except ReducerOutOfMemory:
            outcome = (None, "oom")
        self._results[number] = outcome
        return outcome

    def run_suite(self, numbers=None) -> Dict[int, Tuple[object, str]]:
        numbers = numbers or sorted(QUERIES)
        return {n: self.run_query(n) for n in numbers}


# --------------------------------------------------------------- memoization
_DATA_CACHE: Dict[Tuple[float, int], TpchData] = {}
_HAWQ_CACHE: Dict[tuple, HawqBench] = {}
_STINGER_CACHE: Dict[tuple, StingerBench] = {}


def get_data(scale_factor: float, seed: int = 19940601) -> TpchData:
    key = (scale_factor, seed)
    if key not in _DATA_CACHE:
        _DATA_CACHE[key] = generate(scale_factor, seed=seed)
    return _DATA_CACHE[key]


def _config_key(config: BenchConfig) -> tuple:
    return (
        config.nominal_bytes,
        config.scale_factor,
        config.storage_format,
        config.compression,
        config.distribution,
        config.interconnect,
        config.io_cached,
        config.sim_segments,
        config.paper_segments,
        config.seed,
        config.executor_mode,
    )


def get_hawq(config: BenchConfig) -> HawqBench:
    """Shared, memoized HAWQ bench instance for a configuration."""
    key = _config_key(config)
    if key not in _HAWQ_CACHE:
        _HAWQ_CACHE[key] = HawqBench.create(
            config, data=get_data(config.scale_factor, config.seed)
        )
    return _HAWQ_CACHE[key]


def get_stinger(config: BenchConfig) -> StingerBench:
    key = _config_key(config)
    if key not in _STINGER_CACHE:
        _STINGER_CACHE[key] = StingerBench.create(
            config, data=get_data(config.scale_factor, config.seed)
        )
    return _STINGER_CACHE[key]


def suite_seconds(results: Dict[int, object]) -> float:
    """Total simulated seconds over a suite of results."""
    total = 0.0
    for result in results.values():
        if isinstance(result, tuple):  # Stinger (result, status)
            result, status = result
            if status != "ok":
                continue
            total += result.seconds
        else:
            total += result.cost.seconds
    return total


def rows_match(a: List[tuple], b: List[tuple], rel_tol: float = 1e-6) -> bool:
    """Order-insensitive row-set comparison with float tolerance."""
    if len(a) != len(b):
        return False

    def sort_key(row):
        # Round floats so summation-order noise cannot reorder rows.
        return tuple(
            "%.6g" % v if isinstance(v, float) else repr(v) for v in row
        )

    def norm(rows):
        return sorted(rows, key=sort_key)

    for row_a, row_b in zip(norm(a), norm(b)):
        if len(row_a) != len(row_b):
            return False
        for x, y in zip(row_a, row_b):
            if isinstance(x, float) and isinstance(y, float):
                if abs(x - y) > rel_tol * max(abs(x), abs(y), 1.0):
                    return False
            elif x != y:
                return False
    return True
