"""Run the paper's figures from the command line, without pytest.

    python -m repro.bench            # all figures
    python -m repro.bench fig6 fig12 # a subset
    REPRO_TPCH_SF=0.005 python -m repro.bench fig7

    python -m repro.bench --wallclock          # real-time row vs batch
    python -m repro.bench --wallclock --check  # perf guard (exit 1 on fail)
    python -m repro.bench --wallclock --check --no-report  # skip the JSON

    python -m repro.bench --throughput          # N-stream concurrency sweep
    python -m repro.bench --throughput --check  # qps floor + tail-ratio gate
"""

from __future__ import annotations

import sys

from repro.bench.harness import (
    BenchConfig,
    NOMINAL_160GB,
    NOMINAL_1600GB,
    default_scale_factor,
    get_hawq,
    get_stinger,
    suite_seconds,
)
from repro.bench.reporting import print_figure


def fig6() -> None:
    measured = {}
    for fmt in ("ao", "co", "parquet"):
        config = BenchConfig(
            nominal_bytes=NOMINAL_160GB,
            scale_factor=default_scale_factor(),
            storage_format=fmt,
            io_cached=True,
        )
        measured[fmt] = suite_seconds(get_hawq(config).run_suite())
    stinger_config = BenchConfig(
        nominal_bytes=NOMINAL_160GB,
        scale_factor=default_scale_factor(),
        io_cached=True,
    )
    measured["stinger"] = suite_seconds(get_stinger(stinger_config).run_suite())
    paper = {"stinger": 7935, "ao": 239, "co": 211, "parquet": 172}
    print_figure(
        "Figure 6: overall TPC-H time, 160GB (CPU-bound)",
        ["system", "paper s", "measured s"],
        [(k, paper[k], measured[k]) for k in ("stinger", "ao", "co", "parquet")],
    )


def fig7() -> None:
    measured = {}
    for fmt in ("ao", "co", "parquet"):
        config = BenchConfig(
            nominal_bytes=NOMINAL_1600GB,
            scale_factor=default_scale_factor(),
            storage_format=fmt,
            io_cached=False,
        )
        measured[fmt] = suite_seconds(get_hawq(config).run_suite())
    stinger_config = BenchConfig(
        nominal_bytes=NOMINAL_1600GB,
        scale_factor=default_scale_factor(),
        io_cached=False,
    )
    results = get_stinger(stinger_config).run_suite()
    oom = sorted(n for n, (_, s) in results.items() if s == "oom")
    measured["stinger"] = suite_seconds(results)
    paper = {"stinger": 95502, "ao": 5115, "co": 2490, "parquet": 2950}
    print_figure(
        "Figure 7: overall TPC-H time, 1.6TB (IO-bound)",
        ["system", "paper s", "measured s"],
        [(k, paper[k], measured[k]) for k in ("stinger", "ao", "co", "parquet")],
        notes=[f"Stinger OOM queries: {oom} (paper reports 3, unnamed)"],
    )


def fig12() -> None:
    out = {}
    for distribution in ("hash", "random"):
        for transport in ("udp", "tcp"):
            config = BenchConfig(
                nominal_bytes=NOMINAL_160GB,
                scale_factor=default_scale_factor(),
                storage_format="co",
                distribution=distribution,
                interconnect=transport,
                io_cached=True,
            )
            out[(distribution, transport)] = suite_seconds(
                get_hawq(config).run_suite()
            )
    rows = []
    for distribution in ("hash", "random"):
        udp, tcp = out[(distribution, "udp")], out[(distribution, "tcp")]
        rows.append((distribution, udp, tcp, (tcp - udp) / udp))
    print_figure(
        "Figure 12: TCP vs UDP interconnect, 160GB",
        ["distribution", "UDP s", "TCP s", "TCP slower by"],
        rows,
        notes=["paper: ~tie on hash; UDP 54% better on random"],
    )


def fig13() -> None:
    rows_a, rows_b = [], []
    for nodes in (4, 8, 12, 16):
        config = BenchConfig(
            nominal_bytes=40e9 * nodes,
            scale_factor=default_scale_factor(),
            storage_format="co",
            io_cached=True,
            sim_segments=nodes,
            paper_segments=nodes * 6,
        )
        rows_a.append((nodes, suite_seconds(get_hawq(config).run_suite())))
        config_b = BenchConfig(
            nominal_bytes=160e9,
            scale_factor=default_scale_factor(),
            storage_format="co",
            io_cached=True,
            sim_segments=nodes,
            paper_segments=nodes * 6,
        )
        rows_b.append((nodes, suite_seconds(get_hawq(config_b).run_suite())))
    print_figure(
        "Figure 13(a): 40GB/node scale-up", ["nodes", "suite s"], rows_a
    )
    print_figure(
        "Figure 13(b): fixed 160GB speed-up", ["nodes", "suite s"], rows_b
    )


FIGURES = {"fig6": fig6, "fig7": fig7, "fig12": fig12, "fig13": fig13}


def main(argv) -> int:
    if "--throughput" in argv:
        from repro.bench.throughput import DEFAULT_SEED, run_throughput

        check = "--check" in argv
        out_path = None if "--no-report" in argv else "BENCH_throughput.json"
        seed = DEFAULT_SEED
        rest = [
            a
            for a in argv
            if a not in ("--throughput", "--check", "--no-report")
        ]
        if "--seed" in rest:
            at = rest.index("--seed")
            try:
                seed = int(rest[at + 1])
            except (IndexError, ValueError):
                print("--seed requires an integer value")
                return 2
            del rest[at : at + 2]
        if rest:
            print(f"--throughput takes no figure names: {rest}")
            return 2
        return run_throughput(out_path=out_path, check=check, seed=seed)
    if "--wallclock" in argv:
        from repro.bench.wallclock import DEFAULT_SEED, run_wallclock

        check = "--check" in argv
        # --no-report: run without (re)writing BENCH_wallclock.json —
        # used by the CI fallback-mode pass so the committed artifact
        # stays the numpy-backend run.
        out_path = None if "--no-report" in argv else "BENCH_wallclock.json"
        seed = DEFAULT_SEED
        rest = [
            a
            for a in argv
            if a not in ("--wallclock", "--check", "--no-report")
        ]
        if "--seed" in rest:
            at = rest.index("--seed")
            try:
                seed = int(rest[at + 1])
            except (IndexError, ValueError):
                print("--seed requires an integer value")
                return 2
            del rest[at : at + 2]
        if rest:
            print(f"--wallclock takes no figure names: {rest}")
            return 2
        return run_wallclock(out_path=out_path, check=check, seed=seed)
    if "--check" in argv or "--seed" in argv or "--no-report" in argv:
        print("--check/--seed/--no-report require --wallclock or --throughput")
        return 2
    chosen = argv or sorted(FIGURES)
    unknown = [name for name in chosen if name not in FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}; available: {sorted(FIGURES)}")
        print("(figures 8-11 and the ablations run via "
              "`pytest benchmarks/ --benchmark-only`)")
        return 2
    for name in chosen:
        FIGURES[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
