"""Formatting helpers for benchmark output.

Every figure benchmark prints a table comparing the paper's reported
numbers to the measured (simulated) ones, plus the derived shape metrics
(speedup factors, scaling ratios) that the reproduction is judged on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def print_figure(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Optional[Sequence[str]] = None,
) -> str:
    """Print one figure's reproduction table and return the text."""
    lines = ["", "=" * 72, title, "=" * 72]
    lines.append(format_table(headers, rows))
    for note in notes or []:
        lines.append(f"  * {note}")
    text = "\n".join(lines)
    print(text)
    return text
