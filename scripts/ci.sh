#!/usr/bin/env bash
# Local CI gate: determinism lint, tier-1 tests, wall-clock bench check,
# and the DetSan concurrency-isolation sweep.
# Run from the repo root:  bash scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== repro-lint (R1..R9) =="
lint_start=$(date +%s.%N)
lint_json=$(python -m repro.lint --json) || {
    status=$?
    echo "$lint_json"
    echo "repro-lint failed (exit $status)"
    exit "$status"
}
lint_end=$(date +%s.%N)
python - "$lint_json" "$lint_start" "$lint_end" <<'PY'
import json, sys
report = json.loads(sys.argv[1])
wall = float(sys.argv[3]) - float(sys.argv[2])
counts = {rule: 0 for rule in report["rules"]}
for finding in report["findings"]:
    counts[finding["rule"]] = counts.get(finding["rule"], 0) + 1
for rule in sorted(counts):
    print(f"  {rule}: {counts[rule]} finding(s)")
print(
    f"  {report['files']} files, {report['baselined']} baselined, "
    f"{len(report['stale_baseline_entries'])} stale, "
    f"{len(report['drifted_baseline_entries'])} drifted, "
    f"{wall:.2f}s wall"
)
PY

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== wall-clock bench, numpy backend (batch >= 5x row) =="
python -m repro.bench --wallclock --check

echo "== wall-clock bench, pure-python fallback (batch >= 1.5x row) =="
REPRO_NO_NUMPY=1 python -m repro.bench --wallclock --check --no-report

echo "== throughput bench (qps floor, p99/p50 ceiling, serial bit-identity) =="
python -m repro.bench --throughput --check

echo "== observability gate (system views + Prometheus exposition + R6) =="
# Prometheus exposition must be well-formed (the exporter self-checks
# against the text-format grammar) and every system view must answer
# through the normal SQL path.
python -m repro.obs --prom --check > /dev/null
python -m repro.obs --smoke
# The new obs modules must stay passive: zero R6 findings, enforced
# even if a future baseline would otherwise absorb them.
obs_r6=$(python -m repro.lint --select R6 --json \
    src/repro/obs/sysviews.py src/repro/obs/activity.py || true)
python - "$obs_r6" <<'PY'
import json, sys
report = json.loads(sys.argv[1])
findings = report.get("findings", [])
for finding in findings:
    print(f"  R6 violation: {finding}")
print(f"  obs passivity: {len(findings)} R6 finding(s)")
sys.exit(1 if findings else 0)
PY

# Gated runtime leg: the DetSan chaos sweep replays 10 seeded concurrent
# workloads x 4 streams and fails on any cross-query mutation outside
# the shared-state registry. Skip with REPRO_SKIP_DETSAN=1.
if [ "${REPRO_SKIP_DETSAN:-0}" != "1" ]; then
    echo "== DetSan sweep (10 seeds x 4 streams) =="
    python -m repro.sanitize --seeds 10 --streams 4
    # Cancel leg: seeded mid-flight cancels under the sanitizer must
    # tear down cleanly — no orphaned queue slot, no leaked charged
    # iterator, no cross-query mutation.
    echo "== DetSan cancel sweep (5 seeds x 4 streams) =="
    python -m repro.sanitize --seeds 5 --streams 4 --cancel
else
    echo "== DetSan sweep skipped (REPRO_SKIP_DETSAN=1) =="
fi

echo "CI gate passed."
