#!/usr/bin/env bash
# Local CI gate: determinism lint, tier-1 tests, wall-clock bench check.
# Run from the repo root:  bash scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== repro-lint (R1..R6) =="
python -m repro.lint

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== wall-clock bench, numpy backend (batch >= 5x row) =="
python -m repro.bench --wallclock --check

echo "== wall-clock bench, pure-python fallback (batch >= 1.5x row) =="
REPRO_NO_NUMPY=1 python -m repro.bench --wallclock --check --no-report

echo "== throughput bench (qps floor, p99/p50 ceiling, serial bit-identity) =="
python -m repro.bench --throughput --check

echo "CI gate passed."
