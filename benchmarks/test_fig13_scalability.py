"""Figure 13: scalability, 4 -> 16 nodes.

Paper:
(a) fixed 40 GB *per node*: total time grows only ~13% while the data
    quadruples — near-linear scale-up;
(b) fixed 160 GB *total*: time drops to ~28% of the 4-node time at 16
    nodes — near-linear speed-up.
"""

from repro.bench.harness import (
    BenchConfig,
    default_scale_factor,
    get_hawq,
    suite_seconds,
)
from repro.bench.reporting import print_figure

NODES = (4, 8, 12, 16)
PER_NODE_BYTES = 40e9
FIXED_TOTAL_BYTES = 160e9
#: The paper runs these on a subset of machines of the same testbed,
#: with 6 segments per node.
SEGMENTS_PER_NODE = 6


def _config(nodes: int, nominal: float) -> BenchConfig:
    return BenchConfig(
        nominal_bytes=nominal,
        scale_factor=default_scale_factor(),
        storage_format="co",
        compression="none",
        io_cached=True,  # 160-640GB across 4-16 nodes stays cacheable
        sim_segments=nodes,  # one simulated segment per node...
        paper_segments=nodes * SEGMENTS_PER_NODE,  # ...stands for 6 real ones
    )


def run_scaleup():
    out = {}
    for nodes in NODES:
        bench = get_hawq(_config(nodes, PER_NODE_BYTES * nodes))
        out[nodes] = suite_seconds(bench.run_suite())
    return out


def run_speedup():
    out = {}
    for nodes in NODES:
        bench = get_hawq(_config(nodes, FIXED_TOTAL_BYTES))
        out[nodes] = suite_seconds(bench.run_suite())
    return out


def test_fig13a_scaleup(benchmark):
    out = benchmark.pedantic(run_scaleup, rounds=1, iterations=1)
    base = out[NODES[0]]
    rows = [(n, PER_NODE_BYTES * n / 1e9, out[n], out[n] / base) for n in NODES]
    print_figure(
        "Figure 13(a): fixed 40GB/node, 4->16 nodes (scale-up)",
        ["nodes", "dataset GB", "suite s", "vs 4 nodes"],
        rows,
        notes=["paper: time grows only ~13% as data quadruples"],
    )
    growth = out[NODES[-1]] / base
    benchmark.extra_info["growth"] = growth
    assert growth < 1.4, f"scale-up should be near-flat, got {growth:.2f}x"


def test_fig13b_speedup(benchmark):
    out = benchmark.pedantic(run_speedup, rounds=1, iterations=1)
    base = out[NODES[0]]
    rows = [(n, out[n], out[n] / base, base / out[n]) for n in NODES]
    print_figure(
        "Figure 13(b): fixed 160GB total, 4->16 nodes (speed-up)",
        ["nodes", "suite s", "vs 4 nodes", "speedup"],
        rows,
        notes=["paper: 16-node time is ~28% of the 4-node time"],
    )
    ratio = out[NODES[-1]] / base
    benchmark.extra_info["ratio"] = ratio
    assert 0.15 <= ratio <= 0.6, f"expected ~0.28, got {ratio:.2f}"
    # Monotone improvement with cluster size.
    times = [out[n] for n in NODES]
    assert times == sorted(times, reverse=True), times
