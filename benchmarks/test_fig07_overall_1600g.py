"""Figure 7: overall execution time at 1.6 TB (IO-bound).

Paper: Stinger 95502 s over 19 queries (3 fail with reducer OOM),
HAWQ AO 5115 s, CO 2490 s, Parquet 2950 s — HAWQ ~40x.
"""

from repro.bench.harness import (
    BenchConfig,
    NOMINAL_1600GB,
    default_scale_factor,
    get_hawq,
    get_stinger,
    suite_seconds,
)
from repro.bench.reporting import print_figure

PAPER = {"stinger": 95502.0, "ao": 5115.0, "co": 2490.0, "parquet": 2950.0}
PAPER_OOM_COUNT = 3


def _config(fmt: str) -> BenchConfig:
    return BenchConfig(
        nominal_bytes=NOMINAL_1600GB,
        scale_factor=default_scale_factor(),
        storage_format=fmt,
        compression="none",
        io_cached=False,
    )


def run_figure():
    measured = {}
    for fmt in ("ao", "co", "parquet"):
        measured[fmt] = suite_seconds(get_hawq(_config(fmt)).run_suite())
    results = get_stinger(_config("ao")).run_suite()
    oom = sorted(n for n, (_, status) in results.items() if status == "oom")
    measured["stinger"] = suite_seconds(results)
    measured["oom"] = oom
    return measured


def test_fig07_overall_1600g(benchmark):
    measured = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = [
        (
            system,
            PAPER[system],
            measured[system],
            PAPER["stinger"] / PAPER[system],
            measured["stinger"] / measured[system],
        )
        for system in ("stinger", "ao", "co", "parquet")
    ]
    print_figure(
        "Figure 7: overall TPC-H time, 1.6TB (IO-bound)",
        ["system", "paper s", "measured s", "paper speedup", "measured speedup"],
        rows,
        notes=[
            f"Stinger reducer-OOM queries: paper {PAPER_OOM_COUNT} (unnamed), "
            f"measured {len(measured['oom'])} {measured['oom']}",
            "Stinger total excludes its OOM-failed queries, as in the paper",
        ],
    )
    benchmark.extra_info.update(
        {f"sim_{k}": v for k, v in measured.items() if k != "oom"}
    )
    benchmark.extra_info["oom_queries"] = str(measured["oom"])

    # Shapes: column formats beat row at IO-bound; CO best; ~3 OOMs; big gap.
    assert measured["co"] < measured["ao"]
    assert measured["co"] <= measured["parquet"] <= measured["ao"]
    assert 2 <= len(measured["oom"]) <= 4
    speedup = measured["stinger"] / measured["co"]
    assert 12 <= speedup <= 80, f"expected ~40x, got {speedup:.0f}x"
