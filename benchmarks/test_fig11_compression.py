"""Figure 11: compression — lineitem size and TPC-H time per codec.

Paper, both scales, codecs none / quicklz / zlib1 / zlib5 / zlib9 for AO
and CO (snappy / gzip for Parquet):

* size: light codecs give ~3x; heavier zlib levels add only slightly;
  column formats compress better than row format;
* time at 160 GB (CPU-bound): higher compression = *slower* (decompression
  CPU buys no IO, data is cached anyway), AO degrades worst;
* time at 1.6 TB (IO-bound): the story flips — compression wins because
  saved IO dwarfs decompression CPU.
"""

from repro.bench.harness import (
    BenchConfig,
    NOMINAL_160GB,
    NOMINAL_1600GB,
    default_scale_factor,
    get_hawq,
    suite_seconds,
)
from repro.bench.reporting import print_figure

#: Codec ladder per storage format (parquet uses snappy/gzip naming).
CODECS = {
    "ao": ("none", "quicklz", "zlib1", "zlib5", "zlib9"),
    "co": ("none", "quicklz", "zlib1", "zlib5", "zlib9"),
    "parquet": ("none", "snappy", "gzip1", "gzip5", "gzip9"),
}


def _config(nominal, cached, fmt, codec) -> BenchConfig:
    return BenchConfig(
        nominal_bytes=nominal,
        scale_factor=default_scale_factor(),
        storage_format=fmt,
        compression=codec,
        io_cached=cached,
    )


def run_scale(nominal, cached):
    out = {}
    for fmt, codecs in CODECS.items():
        for codec in codecs:
            bench = get_hawq(_config(nominal, cached, fmt, codec))
            size = bench.table_stored_bytes("lineitem")
            seconds = suite_seconds(bench.run_suite())
            out[(fmt, codec)] = (size, seconds)
    return out


def test_fig11a_compression_160g(benchmark):
    out = benchmark.pedantic(
        lambda: run_scale(NOMINAL_160GB, True), rounds=1, iterations=1
    )
    rows = [
        (fmt, codec, size / 1e6, seconds)
        for (fmt, codec), (size, seconds) in out.items()
    ]
    print_figure(
        "Figure 11(a): compression at 160GB (CPU-bound)",
        ["format", "codec", "lineitem MB (actual)", "suite s (simulated)"],
        rows,
        notes=[
            "paper: times INCREASE with compression level when CPU-bound",
            "paper: light codecs ~3x ratio; zlib levels add little more",
        ],
    )
    for fmt in ("ao", "co", "parquet"):
        ladder = CODECS[fmt]
        sizes = [out[(fmt, c)][0] for c in ladder]
        times = [out[(fmt, c)][1] for c in ladder]
        # Light codec compresses ~3x; deeper levels shave only a bit more.
        assert sizes[1] < sizes[0] / 2, (fmt, sizes)
        assert sizes[4] <= sizes[1]
        # CPU-bound: compressed runs are slower than uncompressed, and
        # deep zlib is slower than the light codec.
        assert times[4] > times[0], (fmt, times)
        assert times[4] > times[1], (fmt, times)
    # Column formats compress better than the row format.
    assert out[("co", "zlib1")][0] < out[("ao", "zlib1")][0]


def test_fig11b_compression_1600g(benchmark):
    out = benchmark.pedantic(
        lambda: run_scale(NOMINAL_1600GB, False), rounds=1, iterations=1
    )
    rows = [
        (fmt, codec, size / 1e6, seconds)
        for (fmt, codec), (size, seconds) in out.items()
    ]
    print_figure(
        "Figure 11(b): compression at 1.6TB (IO-bound)",
        ["format", "codec", "lineitem MB (actual)", "suite s (simulated)"],
        rows,
        notes=["paper: the story flips — compression WINS when IO-bound"],
    )
    for fmt in ("ao", "co", "parquet"):
        ladder = CODECS[fmt]
        times = [out[(fmt, c)][1] for c in ladder]
        # IO-bound: any compression beats none.
        assert times[1] < times[0], (fmt, times)
        assert times[2] < times[0], (fmt, times)
