"""Figure 9: complex join queries (Q5, 7, 8, 9, 10, 18) at 1.6 TB.

Paper: HAWQ ~40x faster — cost-based planning, pipelined motions and the
interconnect dominate here; some Stinger runs OOM outright.
"""

import math

from repro.bench.harness import (
    BenchConfig,
    NOMINAL_1600GB,
    default_scale_factor,
    get_hawq,
    get_stinger,
)
from repro.bench.reporting import print_figure
from repro.tpch.queries import COMPLEX_JOIN_QUERIES


def _config() -> BenchConfig:
    return BenchConfig(
        nominal_bytes=NOMINAL_1600GB,
        scale_factor=default_scale_factor(),
        storage_format="co",
        compression="none",
        io_cached=False,
    )


def run_figure():
    hawq = get_hawq(_config())
    stinger = get_stinger(_config())
    per_query = {}
    for n in COMPLEX_JOIN_QUERIES:
        h = hawq.run_query(n).cost.seconds
        result, status = stinger.run_query(n)
        s = result.seconds if status == "ok" else float("nan")
        per_query[n] = (h, s, status)
    return per_query


def test_fig09_complex_joins(benchmark):
    per_query = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = [
        (f"Q{n}", h, s if status == "ok" else "OOM", (s / h if status == "ok" else "-"))
        for n, (h, s, status) in per_query.items()
    ]
    print_figure(
        "Figure 9: complex join queries, 1.6TB",
        ["query", "HAWQ s", "Stinger s", "speedup"],
        rows,
        notes=["paper: HAWQ ~40x faster on complex joins"],
    )
    ratios = [s / h for h, s, status in per_query.values() if status == "ok"]
    mean = sum(ratios) / len(ratios)
    benchmark.extra_info["mean_speedup"] = mean
    assert mean > 12, f"expected ~40x on complex joins, got {mean:.0f}x"
    # Complex joins must show a larger gap than simple selections (Fig 8).
    from repro.tpch.queries import SIMPLE_SELECTION_QUERIES

    hawq = get_hawq(_config())
    stinger = get_stinger(_config())
    simple_ratios = []
    for n in SIMPLE_SELECTION_QUERIES:
        h = hawq.run_query(n).cost.seconds
        result, status = stinger.run_query(n)
        if status == "ok":
            simple_ratios.append(result.seconds / h)
    assert mean > sum(simple_ratios) / len(simple_ratios)
