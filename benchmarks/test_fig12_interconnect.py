"""Figure 12: TCP vs UDP interconnect, 160 GB, hash vs random tables.

Paper: the two transports tie under hash distribution (few motions),
while under random distribution — deeper plans, more data movement, many
more concurrent connections — UDP beats TCP by ~54%.

A packet-level microbenchmark on the real protocol implementation
(repro.interconnect) backs the macro result: with many concurrent
streams per host, the TCP model's per-connection set-up and concurrency
penalty throttle it, while UDP multiplexes one socket.
"""

from repro.bench.harness import (
    BenchConfig,
    NOMINAL_160GB,
    default_scale_factor,
    get_hawq,
    suite_seconds,
)
from repro.bench.reporting import print_figure
from repro.interconnect import StreamKey, TcpEndpoint, TcpFabric, UdpEndpoint
from repro.network import NetworkConditions, SimNetwork

PAPER_UDP_GAIN_RANDOM = 0.54  # UDP outperforms TCP by 54% on random dist


def _config(interconnect: str, distribution: str) -> BenchConfig:
    return BenchConfig(
        nominal_bytes=NOMINAL_160GB,
        scale_factor=default_scale_factor(),
        storage_format="co",
        compression="none",
        distribution=distribution,
        interconnect=interconnect,
        io_cached=True,
    )


def run_macro():
    out = {}
    for distribution in ("hash", "random"):
        for transport in ("udp", "tcp"):
            bench = get_hawq(_config(transport, distribution))
            out[(distribution, transport)] = suite_seconds(bench.run_suite())
    return out


def run_packet_micro(num_streams: int = 1024, packets_per_stream: int = 12):
    """Simulated seconds to drain many concurrent streams, per transport."""
    # UDP: all streams share one socket pair.
    net = SimNetwork(NetworkConditions(loss_rate=0.01), seed=11)
    sender_ep = UdpEndpoint(net, ("a", 1))
    receiver_ep = UdpEndpoint(net, ("b", 1))
    pairs = []
    for i in range(num_streams):
        key = StreamKey(1, 1, 1, i, 1000 + i)
        recv = receiver_ep.create_receiver(key, ("a", 1))
        send = sender_ep.create_sender(key, ("b", 1))
        pairs.append((send, recv))
    for send, _ in pairs:
        for p in range(packets_per_stream):
            send.send(p, size=512)
        send.finish()
    udp_time = net.run(
        until=lambda: all(s.done and r.done for s, r in pairs), max_time=120
    )

    # TCP: one connection per stream, with set-up and concurrency cost.
    net2 = SimNetwork(NetworkConditions(loss_rate=0.01), seed=11)
    fabric = TcpFabric(net2)
    a = TcpEndpoint(fabric, ("a", 1))
    b = TcpEndpoint(fabric, ("b", 1))
    tcp_pairs = []
    for i in range(num_streams):
        key = StreamKey(1, 1, 1, i, 1000 + i)
        recv = b.create_receiver(key)
        send = a.create_sender(key, b)
        recv.attach_sender(send)
        tcp_pairs.append((send, recv))
    for send, _ in tcp_pairs:
        for p in range(packets_per_stream):
            send.send(p, size=512)
        send.finish()
    tcp_time = net2.run(
        until=lambda: all(s.done and r.done for s, r in tcp_pairs), max_time=120
    )
    return udp_time, tcp_time


def test_fig12_interconnect(benchmark):
    out = benchmark.pedantic(run_macro, rounds=1, iterations=1)
    rows = []
    for distribution in ("hash", "random"):
        udp = out[(distribution, "udp")]
        tcp = out[(distribution, "tcp")]
        rows.append((distribution, udp, tcp, (tcp - udp) / udp))
    print_figure(
        "Figure 12: TCP vs UDP interconnect, 160GB",
        ["distribution", "UDP s", "TCP s", "TCP slower by"],
        rows,
        notes=[
            "paper: similar under hash distribution; UDP ~54% better under "
            "random (deeper plans, more connections)"
        ],
    )
    hash_gap = (out[("hash", "tcp")] - out[("hash", "udp")]) / out[("hash", "udp")]
    random_gap = (
        out[("random", "tcp")] - out[("random", "udp")]
    ) / out[("random", "udp")]
    benchmark.extra_info["hash_gap"] = hash_gap
    benchmark.extra_info["random_gap"] = random_gap
    # Shape: near-tie on hash; clear UDP win on random; random >> hash gap.
    assert abs(hash_gap) < 0.25, hash_gap
    assert 0.2 <= random_gap <= 1.5, random_gap
    assert random_gap > hash_gap


def test_fig12_packet_level(benchmark):
    udp_time, tcp_time = benchmark.pedantic(
        run_packet_micro, rounds=1, iterations=1
    )
    print_figure(
        "Figure 12 (micro): packet-level protocol, 1024 concurrent streams",
        ["transport", "simulated s"],
        [("udp", udp_time), ("tcp", tcp_time)],
    )
    benchmark.extra_info["udp"] = udp_time
    benchmark.extra_info["tcp"] = tcp_time
    assert udp_time < tcp_time
