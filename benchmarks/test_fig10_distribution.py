"""Figure 10: hash vs random data distribution (Q5, 8, 9, 18; AO & CO).

Paper: designating good distribution keys brings ~2x on these queries —
co-located equi-joins skip the redistribution motions entirely
(Section 2.3's alignment argument, Q9 walked through in Section 8.3).
"""

from repro.bench.harness import (
    BenchConfig,
    NOMINAL_1600GB,
    default_scale_factor,
    get_hawq,
)
from repro.bench.reporting import print_figure

QUERIES = (5, 8, 9, 18)
PAPER_IMPROVEMENT = 2.0


def _config(fmt: str, distribution: str) -> BenchConfig:
    return BenchConfig(
        nominal_bytes=NOMINAL_1600GB,
        scale_factor=default_scale_factor(),
        storage_format=fmt,
        compression="none",
        distribution=distribution,
        io_cached=False,
    )


def run_figure():
    out = {}
    for fmt in ("ao", "co"):
        for distribution in ("hash", "random"):
            bench = get_hawq(_config(fmt, distribution))
            for n in QUERIES:
                out[(fmt, distribution, n)] = bench.run_query(n).cost.seconds
    return out


def test_fig10_distribution(benchmark):
    out = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = []
    improvements = []
    for fmt in ("ao", "co"):
        for n in QUERIES:
            hash_time = out[(fmt, "hash", n)]
            random_time = out[(fmt, "random", n)]
            improvements.append(random_time / hash_time)
            rows.append(
                (f"{fmt.upper()} Q{n}", hash_time, random_time, random_time / hash_time)
            )
    print_figure(
        "Figure 10: hash vs random distribution, 1.6TB",
        ["config", "hash s", "random s", "random/hash"],
        rows,
        notes=[f"paper: distribution keys bring ~{PAPER_IMPROVEMENT}x overall"],
    )
    mean = sum(improvements) / len(improvements)
    benchmark.extra_info["mean_improvement"] = mean
    assert all(r > 1.0 for r in improvements), improvements
    assert 1.2 <= mean <= 4.0, f"expected ~2x, got {mean:.2f}x"
