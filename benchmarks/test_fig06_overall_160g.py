"""Figure 6: overall execution time of all 22 TPC-H queries at 160 GB.

Paper (CPU-bound case, data fits in page cache):
Stinger 7935 s, HAWQ AO 239 s, CO 211 s, Parquet 172 s — HAWQ ~45x.
"""

from repro.bench.harness import (
    BenchConfig,
    NOMINAL_160GB,
    default_scale_factor,
    get_hawq,
    get_stinger,
    suite_seconds,
)
from repro.bench.reporting import print_figure

PAPER = {"stinger": 7935.0, "ao": 239.0, "co": 211.0, "parquet": 172.0}


def _config(fmt: str) -> BenchConfig:
    return BenchConfig(
        nominal_bytes=NOMINAL_160GB,
        scale_factor=default_scale_factor(),
        storage_format=fmt,
        compression="none",
        io_cached=True,
    )


def run_figure():
    measured = {}
    for fmt in ("ao", "co", "parquet"):
        measured[fmt] = suite_seconds(get_hawq(_config(fmt)).run_suite())
    stinger = get_stinger(_config("ao"))
    results = stinger.run_suite()
    assert all(status == "ok" for _, status in results.values()), (
        "no query should OOM at 160GB"
    )
    measured["stinger"] = suite_seconds(results)
    return measured


def test_fig06_overall_160g(benchmark):
    measured = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = [
        (
            system,
            PAPER[system],
            measured[system],
            PAPER["stinger"] / PAPER[system],
            measured["stinger"] / measured[system],
        )
        for system in ("stinger", "ao", "co", "parquet")
    ]
    print_figure(
        "Figure 6: overall TPC-H time, 160GB (CPU-bound)",
        ["system", "paper s", "measured s", "paper speedup", "measured speedup"],
        rows,
        notes=["headline: HAWQ ~45x faster than Stinger at 160GB"],
    )
    benchmark.extra_info.update({f"sim_{k}": v for k, v in measured.items()})

    # Shape assertions: ordering and rough factors must match the paper.
    assert measured["parquet"] <= measured["co"] <= measured["ao"]
    speedup = measured["stinger"] / measured["parquet"]
    assert 20 <= speedup <= 90, f"expected ~45x, got {speedup:.0f}x"
