"""Figure 8: simple selection queries (Q1, 4, 6, 11, 13, 15) at 1.6 TB.

Paper: HAWQ ~10x faster than Stinger on these — the gap comes mostly
from task start-up/coordination and stage materialization, since the
plans themselves are trivial.
"""

from repro.bench.harness import (
    BenchConfig,
    NOMINAL_1600GB,
    default_scale_factor,
    get_hawq,
    get_stinger,
)
from repro.bench.reporting import print_figure
from repro.tpch.queries import SIMPLE_SELECTION_QUERIES


def _config() -> BenchConfig:
    return BenchConfig(
        nominal_bytes=NOMINAL_1600GB,
        scale_factor=default_scale_factor(),
        storage_format="co",
        compression="none",
        io_cached=False,
    )


def run_figure():
    hawq = get_hawq(_config())
    stinger = get_stinger(_config())
    per_query = {}
    for n in SIMPLE_SELECTION_QUERIES:
        h = hawq.run_query(n).cost.seconds
        result, status = stinger.run_query(n)
        s = result.seconds if status == "ok" else float("nan")
        per_query[n] = (h, s, status)
    return per_query


def test_fig08_simple_selection(benchmark):
    per_query = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = [
        (f"Q{n}", h, s if status == "ok" else "OOM", (s / h if status == "ok" else "-"))
        for n, (h, s, status) in per_query.items()
    ]
    print_figure(
        "Figure 8: simple selection queries, 1.6TB",
        ["query", "HAWQ s", "Stinger s", "speedup"],
        rows,
        notes=["paper: HAWQ ~10x faster on simple selections"],
    )
    ratios = [
        s / h for h, s, status in per_query.values() if status == "ok"
    ]
    benchmark.extra_info["mean_speedup"] = sum(ratios) / len(ratios)
    # The simple-query gap should be clearly smaller than the complex-join
    # gap (Fig 9) but still large: paper says ~10x.
    assert all(r > 3 for r in ratios), ratios
    assert sum(ratios) / len(ratios) > 5
