"""Benchmark-suite configuration.

Each figure benchmark runs its workload once (simulated time is
deterministic, so repeated rounds add nothing) and records both the
paper's reported numbers and the measured ones in ``extra_info``.
"""
