"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation disables one HAWQ mechanism and measures what it was
buying:

* **direct dispatch** (Section 3): single-segment lookups skip the full
  N-gang dispatch;
* **metadata dispatch** (Section 3.1): self-described plans spare QEs a
  catalog-RPC storm against the master;
* **partition elimination** (Section 2.3): date-ranged scans skip
  partitions the predicate excludes;
* **pipelined motions** (Section 3): slices stream through motions
  instead of materializing between stages (the MapReduce failure mode).
"""

import pytest

from repro.bench.harness import (
    BenchConfig,
    NOMINAL_160GB,
    default_scale_factor,
    get_data,
)
from repro.bench.reporting import print_figure
from repro.engine import Engine
from repro.planner.planner import PlannerOptions
from repro.simtime import CostModel
from repro.tpch.schema import load_tpch


def _engine(**kwargs) -> Engine:
    model = CostModel()
    model.io_cached = True
    model.scale = 1000.0
    return Engine(
        num_segment_hosts=8, segments_per_host=2, cost_model=model, **kwargs
    )


def test_ablation_direct_dispatch(benchmark):
    def run():
        data = get_data(default_scale_factor())
        times = {}
        for enabled in (True, False):
            engine = _engine(
                planner_options=PlannerOptions(enable_direct_dispatch=enabled)
            )
            session = engine.connect()
            load_tpch(session, data=data)
            keys = [row[0] for row in data.orders[:40]]
            total = 0.0
            for key in keys:
                result = session.execute(
                    f"SELECT * FROM orders WHERE o_orderkey = {key}"
                )
                assert len(result.rows) == 1
                total += result.cost.seconds
            times[enabled] = total
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Ablation: direct dispatch (40 single-row lookups)",
        ["direct dispatch", "total s"],
        [("on", times[True]), ("off", times[False])],
    )
    benchmark.extra_info["gain"] = times[False] / times[True]
    assert times[True] < times[False]


def test_ablation_metadata_dispatch(benchmark):
    def run():
        data = get_data(default_scale_factor())
        times = {}
        for enabled in (True, False):
            engine = _engine(metadata_dispatch=enabled)
            session = engine.connect()
            load_tpch(session, data=data)
            result = session.execute(
                """
                select n_name, count(*) from customer, orders, nation
                where c_custkey = o_custkey and c_nationkey = n_nationkey
                group by n_name
                """
            )
            times[enabled] = result.cost.seconds
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Ablation: metadata dispatch (self-described plans vs catalog RPCs)",
        ["metadata dispatch", "query s"],
        [("on", times[True]), ("off", times[False])],
    )
    benchmark.extra_info["gain"] = times[False] / times[True]
    assert times[True] < times[False]


def test_ablation_partition_elimination(benchmark):
    def run():
        data = get_data(default_scale_factor())
        times = {}
        for enabled in (True, False):
            engine = _engine(
                planner_options=PlannerOptions(
                    enable_partition_elimination=enabled
                )
            )
            session = engine.connect()
            session.execute(
                """
                CREATE TABLE sales_part (id INT, saledate DATE, amt DECIMAL(10,2))
                DISTRIBUTED BY (id)
                PARTITION BY RANGE (saledate)
                (START (date '1992-01-01') INCLUSIVE
                 END (date '1999-01-01') EXCLUSIVE
                 EVERY (INTERVAL '6 month'))
                """
            )
            rows = [
                (o[0], o[4], float(o[3])) for o in data.orders
            ]  # orderkey, orderdate, totalprice
            session.load_rows("sales_part", rows)
            result = session.execute(
                "SELECT count(*), sum(amt) FROM sales_part "
                "WHERE saledate >= date '1996-01-01' "
                "AND saledate < date '1996-07-01'"
            )
            times[enabled] = result.cost.seconds
            # Verify pruning happened (or not) on the scan node.
            times[(enabled, "result")] = result.rows[0]
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    assert times[(True, "result")] == times[(False, "result")]
    print_figure(
        "Ablation: partition elimination (6-month slice of 7 years)",
        ["elimination", "query s"],
        [("on", times[True]), ("off", times[False])],
    )
    benchmark.extra_info["gain"] = times[False] / times[True]
    assert times[True] < times[False]


def test_ablation_pipelining(benchmark):
    def run():
        data = get_data(default_scale_factor())
        times = {}
        for pipelined in (True, False):
            engine = _engine(pipelined=pipelined)
            session = engine.connect()
            load_tpch(session, data=data)
            result = session.execute(
                """
                select n_name, sum(l_extendedprice * (1 - l_discount)) as rev
                from customer, orders, lineitem, supplier, nation, region
                where c_custkey = o_custkey and l_orderkey = o_orderkey
                  and l_suppkey = s_suppkey and c_nationkey = s_nationkey
                  and s_nationkey = n_nationkey and n_regionkey = r_regionkey
                group by n_name order by rev desc
                """
            )
            times[pipelined] = result.cost.seconds
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Ablation: pipelined slices vs staged (materialize-per-stage)",
        ["execution", "query s"],
        [("pipelined", times[True]), ("staged", times[False])],
    )
    benchmark.extra_info["gain"] = times[False] / times[True]
    assert times[True] < times[False]


def test_ablation_colocation_awareness(benchmark):
    """PlannerOptions.enable_colocation=False makes the planner ignore
    existing hash distributions entirely — every join redistributes, as
    if all tables were randomly distributed (Section 2.3's motivation)."""

    def run():
        data = get_data(default_scale_factor())
        times = {}
        for enabled in (True, False):
            engine = _engine(
                planner_options=PlannerOptions(enable_colocation=enabled)
            )
            session = engine.connect()
            load_tpch(session, data=data)
            result = session.execute(
                """
                select l_orderkey, count(l_quantity)
                from lineitem, orders
                where l_orderkey = o_orderkey and l_tax > 0.01
                group by l_orderkey
                """
            )
            times[enabled] = result.cost.seconds
            times[(enabled, "slices")] = len(result.plan.slices)
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Ablation: co-location awareness (the paper's Figure 3 query)",
        ["colocation", "query s", "slices"],
        [
            ("on", times[True], times[(True, "slices")]),
            ("off", times[False], times[(False, "slices")]),
        ],
    )
    benchmark.extra_info["gain"] = times[False] / times[True]
    assert times[True] < times[False]
    # The co-located plan is Figure 3(a): fewer slices.
    assert times[(True, "slices")] < times[(False, "slices")]
