"""Quickstart: stand up a HAWQ cluster, create tables, run SQL.

Run with:  python examples/quickstart.py
"""

from repro import Engine

def main() -> None:
    # A cluster: 4 segment hosts x 2 segments, HDFS DataNodes co-located,
    # one master with a warm standby — all simulated in-process.
    engine = Engine(num_segment_hosts=4, segments_per_host=2)
    session = engine.connect()

    # DDL straight from the paper (Section 2.3), including the physical
    # design knobs: storage format, compression, distribution key.
    session.execute(
        """
        CREATE TABLE orders (
            o_orderkey INT8 NOT NULL,
            o_custkey INTEGER NOT NULL,
            o_totalprice DECIMAL(15,2) NOT NULL,
            o_orderdate DATE NOT NULL
        ) WITH (appendonly=true, orientation=column, compresstype=quicklz)
        DISTRIBUTED BY (o_orderkey)
        """
    )
    session.execute(
        """
        CREATE TABLE lineitem (
            l_orderkey INT8 NOT NULL,
            l_quantity DECIMAL(15,2) NOT NULL,
            l_extendedprice DECIMAL(15,2) NOT NULL,
            l_tax DECIMAL(15,2) NOT NULL
        ) WITH (appendonly=true, orientation=column)
        DISTRIBUTED BY (l_orderkey)
        """
    )

    # Loading: INSERT goes through the full transactional path — rows are
    # hashed to segments, appended to HDFS segment files, and the logical
    # lengths are committed in the catalog.
    session.execute(
        "INSERT INTO orders VALUES "
        + ", ".join(
            f"({k}, {k % 10}, {100.0 + k}, date '1995-01-{1 + k % 28:02d}')"
            for k in range(1, 101)
        )
    )
    session.execute(
        "INSERT INTO lineitem VALUES "
        + ", ".join(
            f"({1 + k % 100}, {1 + k % 50}, {20.5 + k}, 0.0{k % 8})"
            for k in range(400)
        )
    )

    # The paper's Section 3.2 example query: because both tables hash on
    # the order key, the join and the aggregation run without any data
    # redistribution — check the plan.
    query = """
        SELECT l_orderkey, count(l_quantity)
        FROM lineitem, orders
        WHERE l_orderkey = o_orderkey AND l_tax > 0.01
        GROUP BY l_orderkey
        ORDER BY l_orderkey
        LIMIT 10
    """
    print("=== EXPLAIN (note: no redistribute motions — co-located) ===")
    for (line,) in session.execute("EXPLAIN " + query).rows:
        print(line)

    result = session.execute(query)
    print("\n=== Results ===")
    for row in result.rows:
        print(row)
    print(f"\nsimulated execution time: {result.cost.seconds * 1000:.2f} ms")
    print(f"tuples processed:        {result.cost.tuples}")
    print(f"network bytes moved:     {result.cost.net_bytes}")

    # Direct dispatch (Section 3): a lookup pinning the distribution key
    # goes to exactly one segment.
    lookup = session.execute("SELECT * FROM orders WHERE o_orderkey = 42")
    print(
        f"\npoint lookup -> direct dispatch to segment "
        f"{lookup.plan.direct_dispatch_segment}: {lookup.rows}"
    )


if __name__ == "__main__":
    main()
