"""Fault tolerance walkthrough (paper Sections 2.6 and 5).

Shows the three recovery stories: transactional rollback with HDFS
truncate, stateless-segment failover, and warm-standby promotion via
log shipping.

Run with:  python examples/fault_tolerance_demo.py
"""

from repro import Engine


def main() -> None:
    engine = Engine(num_segment_hosts=4, segments_per_host=2, seed=11)
    session = engine.connect()

    session.execute(
        "CREATE TABLE accounts (id INT, balance DECIMAL(12,2)) DISTRIBUTED BY (id)"
    )
    session.execute(
        "INSERT INTO accounts VALUES " + ", ".join(
            f"({i}, {1000.0 + i})" for i in range(50)
        )
    )

    # --- 1. Transactions: abort rolls back via HDFS truncate -----------
    print("=== transactional rollback ===")
    session.execute("BEGIN")
    session.execute("INSERT INTO accounts VALUES (999, -1.0)")
    inside = session.query("SELECT count(*) FROM accounts")[0][0]
    session.execute("ROLLBACK")
    after = session.query("SELECT count(*) FROM accounts")[0][0]
    print(f"rows inside txn: {inside}, after ROLLBACK: {after}")
    print("(the aborted append was physically truncated from HDFS)\n")

    # --- 2. Stateless segments: failover to surviving hosts ------------
    print("=== segment failover ===")
    total_before = session.query("SELECT sum(balance) FROM accounts")[0][0]
    engine.fail_segment(0)
    engine.fail_segment(1)
    total_after = session.query("SELECT sum(balance) FROM accounts")[0][0]
    acting = {
        s.segment_id: s.effective_host()
        for s in engine.segments
        if s.acting_host is not None
    }
    print(f"sum before failure: {total_before:.2f}")
    print(f"sum after 2 segments died: {total_after:.2f}  (identical)")
    print(f"failed segments now acted for by: {acting}")
    engine.recover_segment(0)
    engine.recover_segment(1)
    print("segments recovered with the paper's recovery utility\n")

    # --- 3. Standby master: log shipping and promotion -----------------
    print("=== standby master promotion ===")
    print(f"WAL records shipped so far: {len(engine.txns.wal)}")
    print(f"standby applied LSN:        {engine.standby.applied_lsn}")
    engine.promote_standby()
    fresh = engine.connect()
    count = fresh.query("SELECT count(*) FROM accounts")[0][0]
    print(f"after promotion, the standby's catalog serves queries: "
          f"count(*) = {count}")
    fresh.execute("INSERT INTO accounts VALUES (1000, 0.0)")
    print("...and accepts new writes.")

    # --- 4. HDFS-level disk failure is masked below the engine ---------
    print("\n=== disk failure masking ===")
    node = engine.hdfs.datanodes["host2"]
    lost = []
    for disk in list(node.disks):
        if disk.blocks:
            lost.extend(node.fail_disk(disk.index))
    recreated = engine.hdfs.check_replication()
    count = fresh.query("SELECT count(*) FROM accounts")[0][0]
    print(
        f"host2 lost {len(lost)} block replicas; NameNode re-created "
        f"{recreated}; queries still answer: count(*) = {count}"
    )


if __name__ == "__main__":
    main()
