"""A miniature of the paper's evaluation: HAWQ vs Stinger on TPC-H.

Loads the same generated dataset into both engines, runs a few of the
paper's highlighted queries, verifies the answers agree, and prints the
simulated speedups (Figures 8/9 in miniature).

Run with:  python examples/hawq_vs_stinger.py
"""

from repro.bench.harness import (
    BenchConfig,
    NOMINAL_160GB,
    get_hawq,
    get_stinger,
    rows_match,
)
from repro.tpch.queries import QUERIES

SHOWCASE = (1, 5, 6, 9)  # two simple selections, two complex joins


def main() -> None:
    config = BenchConfig(
        nominal_bytes=NOMINAL_160GB, scale_factor=0.002, io_cached=True,
        storage_format="co",
    )
    print("loading TPC-H into HAWQ (CO format) and Stinger (ORC)...")
    hawq = get_hawq(config)
    stinger = get_stinger(config)

    print(f"{'query':>6} {'HAWQ s':>10} {'Stinger s':>10} {'speedup':>8}  answers")
    for number in SHOWCASE:
        hawq_result = hawq.run_query(number)
        stinger_result, status = stinger.run_query(number)
        agree = status == "ok" and rows_match(
            hawq_result.rows, stinger_result.rows
        )
        speedup = stinger_result.seconds / hawq_result.cost.seconds
        print(
            f"{'Q' + str(number):>6} {hawq_result.cost.seconds:>10.1f} "
            f"{stinger_result.seconds:>10.1f} {speedup:>7.0f}x  "
            f"{'match' if agree else 'MISMATCH'}"
        )

    print(
        "\n(simulated seconds at a nominal 160GB on the paper's 16-node "
        "testbed; the full per-figure reproduction lives in benchmarks/)"
    )


if __name__ == "__main__":
    main()
