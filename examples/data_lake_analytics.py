"""The paper's data-lake scenario (Section 1 + Section 6).

Raw files land on HDFS with no ETL; operational data lives in an HBase
store. PXF external tables query both in place, join them with curated
internal tables, and INSERT..SELECT materializes the result into a
partitioned, compressed warehouse table.

Run with:  python examples/data_lake_analytics.py
"""

from repro import Engine
from repro.pxf import HBaseConnector, SimulatedHBase


def main() -> None:
    engine = Engine(num_segment_hosts=4, segments_per_host=2)
    session = engine.connect()

    # --- 1. Raw click logs dropped into the lake as delimited text -----
    clicks = "".join(
        f"{day}|{user}|{'buy' if (day * user) % 7 == 0 else 'view'}\n"
        for day in range(1, 11)
        for user in range(1, 21)
    )
    engine.hdfs.client().write_file("/lake/clicks/2014-06.log", clicks.encode())

    session.execute(
        """
        CREATE EXTERNAL TABLE raw_clicks (day INT, user_id INT, action TEXT)
        LOCATION ('pxf://pxf/lake/clicks/2014-06.log?profile=HdfsTextSimple')
        FORMAT 'TEXT' ()
        """
    )

    # --- 2. Operational customer profiles live in HBase ----------------
    hbase = SimulatedHBase(region_servers=["host0", "host1"])
    hbase.create_table("profiles", num_regions=4)
    for user in range(1, 21):
        hbase.put(
            "profiles",
            f"{user:06d}",
            {"info:tier": "gold" if user % 5 == 0 else "standard"},
        )
    engine.pxf.register(HBaseConnector(hbase))
    session.execute(
        """
        CREATE EXTERNAL TABLE profiles (recordkey INT, "info:tier" TEXT)
        LOCATION ('pxf://pxf/profiles?profile=HBase')
        FORMAT 'CUSTOM' (formatter='pxfwritable_import')
        """
    )

    # --- 3. Ad-hoc exploration across BOTH stores, no ETL --------------
    print("=== buys per customer tier (text file JOIN HBase, in place) ===")
    rows = session.query(
        """
        SELECT p."info:tier" AS tier, count(*) AS buys
        FROM raw_clicks c, profiles p
        WHERE c.user_id = p.recordkey AND c.action = 'buy'
        GROUP BY p."info:tier"
        ORDER BY buys DESC
        """
    )
    for row in rows:
        print(f"  {row[0]:10s} {row[1]}")

    # --- 4. Materialize the hot slice into the warehouse ---------------
    session.execute(
        """
        CREATE TABLE warehouse_clicks (day INT, user_id INT, action TEXT)
        WITH (appendonly=true, orientation=column, compresstype=zlib,
              compresslevel=1)
        DISTRIBUTED BY (user_id)
        PARTITION BY RANGE (day)
        (START (1) INCLUSIVE END (11) EXCLUSIVE EVERY (5))
        """
    )
    session.execute(
        "INSERT INTO warehouse_clicks SELECT day, user_id, action FROM raw_clicks"
    )

    # Partition elimination: a day-ranged query scans one partition.
    result = session.execute(
        "SELECT count(*) FROM warehouse_clicks WHERE day >= 1 AND day < 5"
    )
    print(f"\nwarehouse rows in days [1,5): {result.rows[0][0]}")
    explain = session.execute(
        "EXPLAIN SELECT count(*) FROM warehouse_clicks WHERE day >= 1 AND day < 5"
    )
    pruned = [line for (line,) in explain.rows if "pruned" in line]
    print("plan shows pruning:", pruned[0].strip() if pruned else "(none)")

    # ANALYZE works on external tables too (Section 6.3).
    session.execute("ANALYZE profiles")
    snapshot = engine.txns.begin().statement_snapshot()
    stats = engine.catalog.get_stats("profiles", snapshot)
    print(f"ANALYZE on the HBase table estimated {stats.row_count:.0f} rows")


if __name__ == "__main__":
    main()
