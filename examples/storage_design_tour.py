"""Physical design tour: storage formats, compression, and online
storage transformation (paper Section 2.5 + the roadmap feature).

Loads one dataset three ways, compares stored bytes and scan costs,
then transforms a live table's storage model with ALTER TABLE.

Run with:  python examples/storage_design_tour.py
"""

from repro import Engine


def stored_bytes(engine, table: str) -> int:
    snapshot = engine.txns.begin().statement_snapshot()
    return sum(
        sum(f["paths"].values())
        for f in engine.catalog.segfiles(table, snapshot)
    )


def main() -> None:
    engine = Engine(num_segment_hosts=4, segments_per_host=2)
    # Pretend this small dataset is ~big: scale data-proportional costs
    # so the physical-design differences dominate fixed query overheads.
    engine.cost_model.scale = 50_000
    session = engine.connect()

    rows = ", ".join(
        f"({i}, {i % 50}, 'customer comment number {i} with repeated words "
        f"repeated words', {round(i * 1.37, 2)})"
        for i in range(2000)
    )
    designs = {
        "events_row": "orientation=row",
        "events_row_z": "orientation=row, compresstype=zlib, compresslevel=5",
        "events_col": "orientation=column, compresstype=quicklz",
        "events_pax": "orientation=parquet, compresstype=snappy",
    }
    print(f"{'table':>14} {'stored bytes':>13} {'wide scan s':>12} "
          f"{'amt-only s':>13}")
    for name, options in designs.items():
        session.execute(
            f"CREATE TABLE {name} (id INT, grp INT, note TEXT, amt "
            f"DECIMAL(10,2)) WITH (appendonly=true, {options}) "
            f"DISTRIBUTED BY (id)"
        )
        session.execute(f"INSERT INTO {name} VALUES {rows}")
        wide = session.execute(f"SELECT min(note) FROM {name}")
        narrow = session.execute(f"SELECT sum(amt) FROM {name}")
        print(
            f"{name:>14} {stored_bytes(engine, name):>13,} "
            f"{wide.cost.seconds:>12.4f} {narrow.cost.seconds:>13.4f}"
        )
    print("\ncolumn formats: smaller files AND much cheaper narrow scans "
          "(they never read the fat 'note' column); the row format reads "
          "everything either way\n")

    # Online storage transformation: the paper's roadmap item.
    before = stored_bytes(engine, "events_row")
    session.execute(
        "ALTER TABLE events_row SET WITH (orientation=column, "
        "compresstype=zlib, compresslevel=1)"
    )
    after = stored_bytes(engine, "events_row")
    check = session.query("SELECT count(*) FROM events_row")[0][0]
    print(
        f"ALTER TABLE events_row row->column+zlib: {before:,} -> {after:,} "
        f"bytes, {check} rows intact"
    )


if __name__ == "__main__":
    main()
