"""Driving the UDP interconnect protocol directly (paper Section 4).

Streams tuples between two endpoints over an increasingly hostile
network and shows the protocol's machinery at work: retransmissions,
duplicate suppression, out-of-order NAKs, and the flow-control window.
Then opens a thousand concurrent streams on TCP vs UDP to show why HAWQ
multiplexes one socket.

Run with:  python examples/interconnect_study.py
"""

from repro.interconnect import (
    StreamKey,
    TcpEndpoint,
    TcpFabric,
    UdpEndpoint,
)
from repro.network import NetworkConditions, SimNetwork


def one_stream(loss_rate: float) -> None:
    net = SimNetwork(NetworkConditions(loss_rate=loss_rate, dup_rate=0.02), seed=7)
    sender_ep = UdpEndpoint(net, ("alpha", 4000))
    receiver_ep = UdpEndpoint(net, ("beta", 4000))
    key = StreamKey(1, 1, 1, 0, 1)
    recv = receiver_ep.create_receiver(key, ("alpha", 4000))
    send = sender_ep.create_sender(key, ("beta", 4000))
    for i in range(400):
        send.send(("tuple", i), size=128)
    send.finish()
    elapsed = net.run(until=lambda: send.done and recv.done, max_time=300)
    ordered = [p[1] for p in recv.received] == list(range(400))
    print(
        f"loss={loss_rate:4.0%}  time={elapsed * 1000:7.2f} ms  "
        f"retransmits={send.retransmits:4d}  dups_seen={recv.duplicates:4d}  "
        f"ooo_naks={recv.out_of_order_events:4d}  ordered={ordered}"
    )


def many_streams(num_streams: int = 1000) -> None:
    # UDP: every stream multiplexes over one socket pair.
    net = SimNetwork(NetworkConditions(), seed=3)
    a = UdpEndpoint(net, ("alpha", 4000))
    b = UdpEndpoint(net, ("beta", 4000))
    pairs = []
    for i in range(num_streams):
        key = StreamKey(1, 1, 1, i, 10_000 + i)
        recv = b.create_receiver(key, ("alpha", 4000))
        send = a.create_sender(key, ("beta", 4000))
        send.send(i, size=256)
        send.finish()
        pairs.append((send, recv))
    udp_time = net.run(
        until=lambda: all(s.done and r.done for s, r in pairs), max_time=600
    )

    # TCP: one real connection per stream; handshakes queue per host.
    net2 = SimNetwork(NetworkConditions(), seed=3)
    fabric = TcpFabric(net2)
    ta = TcpEndpoint(fabric, ("alpha", 0))
    tb = TcpEndpoint(fabric, ("beta", 0))
    tcp_pairs = []
    for i in range(num_streams):
        key = StreamKey(1, 1, 1, i, 10_000 + i)
        recv = tb.create_receiver(key)
        send = ta.create_sender(key, tb)
        recv.attach_sender(send)
        send.send(i, size=256)
        send.finish()
        tcp_pairs.append((send, recv))
    tcp_time = net2.run(
        until=lambda: all(s.done and r.done for s, r in tcp_pairs), max_time=600
    )
    print(f"\n{num_streams} concurrent tuple streams:")
    print(f"  UDP (one multiplexed socket): {udp_time * 1000:8.1f} ms")
    print(f"  TCP (one connection each):    {tcp_time * 1000:8.1f} ms")
    print(f"  -> TCP is {tcp_time / udp_time:.1f}x slower at this fan-out, "
          "which is the paper's case for the UDP interconnect")


def main() -> None:
    print("=== one stream under increasing loss ===")
    for loss in (0.0, 0.05, 0.15, 0.30):
        one_stream(loss)
    many_streams()


if __name__ == "__main__":
    main()
